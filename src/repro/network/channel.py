"""Wireless channel: broadcast/unicast delivery with unit-cost accounting.

The channel is the only component allowed to charge energy: every MAC frame
that is transmitted charges the sender one transmission cost and every
receiver one reception cost, with the per-message *kind* recorded so the
metrics layer can split costs into query / update / estimate / flood traffic
exactly as §5 of the paper does.

Delivery is scheduled through the simulation engine with a small propagation
plus MAC-access delay, so message interleaving within an epoch is modelled
explicitly and deterministically.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Dict, Optional

import numpy as np

from ..energy.ledger import NetworkLedger
from ..energy.model import DEFAULT_ENERGY_MODEL, EnergyCostModel
from ..simulation.engine import Simulator
from ..simulation.events import EventPriority
from ..simulation.trace import NULL_TRACER, Tracer
from .addresses import BROADCAST, NodeId, validate_node_id
from .topology import Topology

ReceiveCallback = Callable[[NodeId, Any], None]
"""Signature of a node's receive hook: ``(sender_id, frame) -> None``."""


@dataclasses.dataclass
class ChannelStats:
    """Aggregate channel counters (independent of the energy ledger)."""

    broadcasts: int = 0
    unicasts: int = 0
    deliveries: int = 0
    drops_dead_node: int = 0
    drops_loss: int = 0
    drops_no_link: int = 0


class WirelessChannel:
    """Unit-disk wireless medium shared by all nodes.

    Parameters
    ----------
    sim:
        The simulation engine used to schedule deliveries.
    topology:
        Connectivity (who can hear whom).  The channel keeps its own mutable
        view so node death/addition can be applied without rebuilding the
        world.
    energy_model:
        Cost model used to charge transmissions/receptions; defaults to the
        paper's unit-cost model.
    ledger:
        Network-wide energy ledger.  A fresh one is created when omitted.
    loss_probability:
        Independent probability that any individual reception fails.  The
        paper's evaluation uses an ideal channel (0.0), but tests and
        ablations exercise lossy settings.
    propagation_delay:
        Simulated delay between transmission and reception.  Kept well below
        one epoch so all per-epoch protocol exchanges settle before the next
        sampling round.
    rng:
        Random generator for loss draws (only needed when
        ``loss_probability > 0``).
    """

    def __init__(
        self,
        sim: Simulator,
        topology: Topology,
        energy_model: EnergyCostModel = DEFAULT_ENERGY_MODEL,
        ledger: Optional[NetworkLedger] = None,
        loss_probability: float = 0.0,
        propagation_delay: float = 1e-3,
        rng: Optional[np.random.Generator] = None,
        tracer: Optional[Tracer] = None,
    ):
        if not (0.0 <= loss_probability < 1.0):
            raise ValueError("loss_probability must be in [0, 1)")
        if propagation_delay < 0:
            raise ValueError("propagation_delay must be non-negative")
        self.sim = sim
        self.graph = topology.graph.copy()
        self.positions = dict(topology.positions)
        self.comm_range = topology.comm_range
        self.energy_model = energy_model
        self.ledger = ledger if ledger is not None else NetworkLedger()
        self.loss_probability = float(loss_probability)
        self.propagation_delay = float(propagation_delay)
        self.rng = rng
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.stats = ChannelStats()
        self._receivers: Dict[NodeId, ReceiveCallback] = {}
        self._alive: Dict[NodeId, bool] = {nid: True for nid in self.graph.nodes}

    # -- registration ---------------------------------------------------------

    def register(self, node_id: NodeId, receiver: ReceiveCallback) -> None:
        """Attach the receive hook for ``node_id`` (normally its MAC layer)."""
        validate_node_id(node_id)
        if node_id not in self.graph:
            raise KeyError(f"node {node_id} is not part of the channel topology")
        self._receivers[node_id] = receiver
        self._alive.setdefault(node_id, True)

    def unregister(self, node_id: NodeId) -> None:
        self._receivers.pop(node_id, None)

    # -- topology dynamics ------------------------------------------------------

    def set_alive(self, node_id: NodeId, alive: bool) -> None:
        """Mark a node dead (it no longer transmits or receives) or alive."""
        if node_id not in self.graph:
            raise KeyError(f"unknown node {node_id}")
        self._alive[node_id] = bool(alive)

    def is_alive(self, node_id: NodeId) -> bool:
        return self._alive.get(node_id, False)

    def add_node(self, node_id: NodeId, position, neighbors=None) -> None:
        """Add a node to the channel's connectivity view."""
        if node_id in self.graph:
            raise ValueError(f"node {node_id} already present")
        self.graph.add_node(node_id)
        self.positions[node_id] = (float(position[0]), float(position[1]))
        if neighbors is None:
            if self.comm_range is None:
                raise ValueError("neighbors required when comm_range is unset")
            import math

            for other, pos in self.positions.items():
                if other == node_id:
                    continue
                if math.dist(pos, self.positions[node_id]) <= self.comm_range:
                    self.graph.add_edge(node_id, other)
        else:
            for other in neighbors:
                self.graph.add_edge(node_id, other)
        self._alive[node_id] = True

    def neighbors(self, node_id: NodeId) -> list[NodeId]:
        """Alive one-hop neighbours of ``node_id``."""
        if node_id not in self.graph:
            return []
        return sorted(n for n in self.graph.neighbors(node_id) if self._alive.get(n))

    @property
    def num_links(self) -> int:
        """Links between currently-alive nodes."""
        return sum(
            1
            for a, b in self.graph.edges
            if self._alive.get(a) and self._alive.get(b)
        )

    # -- transmission -----------------------------------------------------------

    def broadcast(
        self,
        sender: NodeId,
        frame: Any,
        kind: str,
        payload_bytes: int = 32,
    ) -> int:
        """One-hop MAC broadcast from ``sender``.

        Charges the sender one transmission and every alive neighbour one
        reception (whether or not the neighbour's protocol cares about the
        frame), exactly matching the paper's flooding cost accounting.

        Returns the number of neighbours the frame was delivered to.
        """
        return self._transmit(sender, BROADCAST, frame, kind, payload_bytes)

    def unicast(
        self,
        sender: NodeId,
        dest: NodeId,
        frame: Any,
        kind: str,
        payload_bytes: int = 32,
    ) -> int:
        """Unicast from ``sender`` to a one-hop neighbour ``dest``.

        Charges one transmission and one reception.  Returns 1 on delivery,
        0 if the frame was dropped (dead node, missing link, channel loss).
        """
        validate_node_id(dest)
        return self._transmit(sender, dest, frame, kind, payload_bytes)

    # -- internals ----------------------------------------------------------------

    def _transmit(
        self,
        sender: NodeId,
        dest: NodeId,
        frame: Any,
        kind: str,
        payload_bytes: int,
    ) -> int:
        validate_node_id(sender)
        if sender not in self.graph:
            raise KeyError(f"unknown sender {sender}")
        if not self._alive.get(sender):
            self.stats.drops_dead_node += 1
            return 0

        if dest == BROADCAST:
            targets = [n for n in self.graph.neighbors(sender) if self._alive.get(n)]
            self.stats.broadcasts += 1
        else:
            if not self.graph.has_edge(sender, dest):
                self.stats.drops_no_link += 1
                # The transmission still happens (and is still paid for); it
                # simply reaches nobody, as on a real radio.
                targets = []
            elif not self._alive.get(dest):
                self.stats.drops_dead_node += 1
                targets = []
            else:
                targets = [dest]
            self.stats.unicasts += 1

        tx_cost = self.energy_model.transmit_cost(payload_bytes, len(targets))
        self.ledger.node(sender).charge_tx(kind, tx_cost)
        self.tracer.record(
            self.sim.now, "channel.tx", sender, dest=dest, kind=kind, targets=len(targets)
        )

        delivered = 0
        for target in targets:
            if self.loss_probability > 0.0 and self.rng is not None:
                if self.rng.random() < self.loss_probability:
                    self.stats.drops_loss += 1
                    continue
            rx_cost = self.energy_model.receive_cost(payload_bytes)
            self.ledger.node(target).charge_rx(kind, rx_cost)
            delivered += 1
            self._schedule_delivery(sender, target, frame, kind)
        return delivered

    def _schedule_delivery(
        self, sender: NodeId, target: NodeId, frame: Any, kind: str
    ) -> None:
        def deliver() -> None:
            if not self._alive.get(target):
                self.stats.drops_dead_node += 1
                return
            receiver = self._receivers.get(target)
            if receiver is None:
                return
            self.stats.deliveries += 1
            self.tracer.record(
                self.sim.now, "channel.rx", target, sender=sender, kind=kind
            )
            receiver(sender, frame)

        self.sim.schedule_after(
            self.propagation_delay,
            deliver,
            priority=EventPriority.MAC,
            label=f"deliver[{kind}] {sender}->{target}",
        )
