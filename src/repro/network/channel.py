"""Wireless channel: broadcast/unicast delivery with unit-cost accounting.

The channel is the only component allowed to charge energy: every MAC frame
that is transmitted charges the sender one transmission cost and every
receiver one reception cost, with the per-message *kind* recorded so the
metrics layer can split costs into query / update / estimate / flood traffic
exactly as §5 of the paper does.

Delivery is scheduled through the simulation engine with a small propagation
plus MAC-access delay, so message interleaving within an epoch is modelled
explicitly and deterministically.  A transmission's whole fan-out is carried
by a *single* delivery event that walks the target list (loss already
applied, in one vectorised draw per transmission), instead of one closure
per receiver: the event-queue traffic per broadcast is O(1) rather than
O(neighbours), which is where most of the hot-loop time used to go.

Reception cost is charged when the frame is *delivered*, not when it is
transmitted: a receiver that dies while the frame is in flight is recorded
as a drop and is never charged, so the energy ledger and the channel stats
always agree about how many receptions actually happened.

Determinism contract
--------------------
Batched and per-receiver delivery are **stream-equivalent**: the vectorised
loss draw consumes exactly one uniform per target, in the same target order
the per-receiver reference path would draw them, from the same named
channel stream.  Flipping ``batched_delivery`` therefore changes the event
count but not a single loss outcome, delivery time, or ledger entry --
``tests/experiments/test_fastpath_determinism.py`` pins the two paths
against each other by `TrialResult` fingerprint.  Lossy channels require an
rng at construction (there is no silent fallback RNG that could decouple a
trial from its seed), and ``loss_probability`` accepts the full [0, 1]
range including the 1.0 endpoint.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Dict, List, Optional

import numpy as np

from ..energy.ledger import NetworkLedger
from ..energy.model import DEFAULT_ENERGY_MODEL, EnergyCostModel
from ..obs.metrics import NULL_METRICS, MetricsRegistry
from ..simulation.engine import Simulator
from ..simulation.events import EventPriority
from ..simulation.trace import NULL_TRACER, Tracer
from .addresses import BROADCAST, NodeId, validate_node_id
from .links import within_range
from .spatial import SpatialHash
from .topology import Topology

ReceiveCallback = Callable[[NodeId, Any], None]
"""Signature of a node's receive hook: ``(sender_id, frame) -> None``."""


@dataclasses.dataclass
class ChannelStats:
    """Aggregate channel counters (independent of the energy ledger)."""

    broadcasts: int = 0
    unicasts: int = 0
    deliveries: int = 0
    drops_dead_node: int = 0
    drops_loss: int = 0
    drops_no_link: int = 0


class WirelessChannel:
    """Unit-disk wireless medium shared by all nodes.

    Parameters
    ----------
    sim:
        The simulation engine used to schedule deliveries.
    topology:
        Connectivity (who can hear whom).  The channel keeps its own mutable
        view so node death/addition can be applied without rebuilding the
        world.
    energy_model:
        Cost model used to charge transmissions/receptions; defaults to the
        paper's unit-cost model.
    ledger:
        Network-wide energy ledger.  A fresh one is created when omitted.
    loss_probability:
        Independent probability that any individual reception fails.  The
        paper's evaluation uses an ideal channel (0.0), but tests and
        ablations exercise lossy settings -- including the ``1.0``
        "all receptions fail" ablation.
    propagation_delay:
        Simulated delay between transmission and reception.  Kept well below
        one epoch so all per-epoch protocol exchanges settle before the next
        sampling round.
    rng:
        Random generator for loss draws.  Required whenever
        ``loss_probability > 0`` (validated at construction time so a lossy
        channel can never silently behave as an ideal one).
    batched_delivery:
        When True (the default) a transmission's whole fan-out rides on one
        delivery event.  ``False`` selects the reference formulation -- one
        event per receiver -- kept for A/B determinism tests: both paths
        must produce bit-identical experiment results.
    metrics:
        Optional :class:`~repro.obs.metrics.MetricsRegistry`.  The only
        live observation is the per-broadcast fan-out histogram (guarded
        by ``metrics.enabled``, like the tracer); the counter metrics are
        harvested from :class:`ChannelStats` at trial end, so disabled
        metrics cost nothing per transmission.
    """

    def __init__(
        self,
        sim: Simulator,
        topology: Topology,
        energy_model: EnergyCostModel = DEFAULT_ENERGY_MODEL,
        ledger: Optional[NetworkLedger] = None,
        loss_probability: float = 0.0,
        propagation_delay: float = 1e-3,
        rng: Optional[np.random.Generator] = None,
        tracer: Optional[Tracer] = None,
        batched_delivery: bool = True,
        metrics: Optional[MetricsRegistry] = None,
    ):
        if not (0.0 <= loss_probability <= 1.0):
            raise ValueError("loss_probability must be in [0, 1]")
        if loss_probability > 0.0 and rng is None:
            raise ValueError(
                "loss_probability > 0 requires an rng for the loss draws"
            )
        if propagation_delay < 0:
            raise ValueError("propagation_delay must be non-negative")
        self.sim = sim
        # Copy-on-write adoption: Topology is immutable (every edit returns a
        # copy), so the channel can share its graph by reference and only pay
        # for a private copy when the channel itself mutates connectivity
        # (add_node).  At n=5000 this turns every mobility re-link's
        # update_topology from an O(V+E) graph copy into a pointer swap.
        self.graph = topology.graph
        self._owns_graph = False
        self.positions = dict(topology.positions)
        self.comm_range = topology.comm_range
        self.energy_model = energy_model
        self.ledger = ledger if ledger is not None else NetworkLedger()
        self.loss_probability = float(loss_probability)
        self.propagation_delay = float(propagation_delay)
        self.rng = rng
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self.batched_delivery = bool(batched_delivery)
        self.stats = ChannelStats()
        self._receivers: Dict[NodeId, ReceiveCallback] = {}
        self._alive: Dict[NodeId, bool] = {nid: True for nid in self.graph.nodes}
        # Per-kind delivery-event labels, built once (one delivery event per
        # transmission makes the label f-string a per-frame cost otherwise).
        self._delivery_labels: Dict[str, str] = {}

    # -- registration ---------------------------------------------------------

    def register(self, node_id: NodeId, receiver: ReceiveCallback) -> None:
        """Attach the receive hook for ``node_id`` (normally its MAC layer)."""
        validate_node_id(node_id)
        if node_id not in self.graph:
            raise KeyError(f"node {node_id} is not part of the channel topology")
        self._receivers[node_id] = receiver
        self._alive.setdefault(node_id, True)

    def unregister(self, node_id: NodeId) -> None:
        self._receivers.pop(node_id, None)

    # -- topology dynamics ------------------------------------------------------

    def set_alive(self, node_id: NodeId, alive: bool) -> None:
        """Mark a node dead (it no longer transmits or receives) or alive."""
        if node_id not in self.graph:
            raise KeyError(f"unknown node {node_id}")
        self._alive[node_id] = bool(alive)

    def is_alive(self, node_id: NodeId) -> bool:
        return self._alive.get(node_id, False)

    def _ensure_private_graph(self) -> None:
        """Copy the (possibly shared) graph before the channel mutates it."""
        if not self._owns_graph:
            self.graph = self.graph.copy()
            self._owns_graph = True

    def add_node(self, node_id: NodeId, position, neighbors=None) -> None:
        """Add a node to the channel's connectivity view.

        When ``neighbors`` is omitted the node is auto-wired to every *alive*
        node within ``comm_range`` (via a grid-hash range query rather than a
        scan of all positions): linking through a dead node would let a later
        resurrection inherit connectivity the radio never had.
        """
        if node_id in self.graph:
            raise ValueError(f"node {node_id} already present")
        self._ensure_private_graph()
        self.graph.add_node(node_id)
        self.positions[node_id] = (float(position[0]), float(position[1]))
        if neighbors is None:
            if self.comm_range is None:
                raise ValueError("neighbors required when comm_range is unset")
            here = self.positions[node_id]
            grid = SpatialHash(self.positions, cell_size=self.comm_range)
            for other in grid.query(here, self.comm_range, exclude=node_id):
                if self._alive.get(other):
                    self.graph.add_edge(node_id, other)
        else:
            for other in neighbors:
                self.graph.add_edge(node_id, other)
        self._alive[node_id] = True

    def update_topology(self, topology: Topology) -> None:
        """Adopt new positions/links after node movement (mobility scenarios).

        The node set must be unchanged: mobility moves nodes, it never adds
        or removes them (use :meth:`add_node` / :meth:`set_alive` for
        that).  Liveness flags and registered receivers are preserved --
        only who-can-hear-whom changes.  The new graph is adopted by
        reference (copy-on-write, see ``__init__``).
        """
        if set(topology.graph.nodes) != set(self.graph.nodes):
            raise ValueError(
                "update_topology requires the same node set; "
                "use add_node/set_alive for membership changes"
            )
        self.graph = topology.graph
        self._owns_graph = False
        self.positions = dict(topology.positions)
        self.comm_range = topology.comm_range

    def neighbors(self, node_id: NodeId) -> list[NodeId]:
        """Alive one-hop neighbours of ``node_id``."""
        if node_id not in self.graph:
            return []
        return sorted(n for n in self.graph.neighbors(node_id) if self._alive.get(n))

    @property
    def num_links(self) -> int:
        """Links between currently-alive nodes."""
        return sum(
            1
            for a, b in self.graph.edges
            if self._alive.get(a) and self._alive.get(b)
        )

    # -- transmission -----------------------------------------------------------

    def broadcast(
        self,
        sender: NodeId,
        frame: Any,
        kind: str,
        payload_bytes: int = 32,
    ) -> int:
        """One-hop MAC broadcast from ``sender``.

        Charges the sender one transmission; every alive neighbour whose
        reception survives the loss draw is charged one reception when the
        frame is delivered (whether or not the neighbour's protocol cares
        about the frame), exactly matching the paper's flooding cost
        accounting.

        Returns the number of receptions scheduled (loss already applied).
        """
        return self._transmit(sender, BROADCAST, frame, kind, payload_bytes)

    def unicast(
        self,
        sender: NodeId,
        dest: NodeId,
        frame: Any,
        kind: str,
        payload_bytes: int = 32,
    ) -> int:
        """Unicast from ``sender`` to a one-hop neighbour ``dest``.

        Charges one transmission and (at delivery) one reception.  Returns 1
        when a reception was scheduled, 0 if the frame was dropped at
        transmit time (dead node, missing link, channel loss).
        """
        validate_node_id(dest)
        return self._transmit(sender, dest, frame, kind, payload_bytes)

    # -- internals ----------------------------------------------------------------

    def _transmit(
        self,
        sender: NodeId,
        dest: NodeId,
        frame: Any,
        kind: str,
        payload_bytes: int,
    ) -> int:
        validate_node_id(sender)
        alive = self._alive
        if sender not in self.graph:
            raise KeyError(f"unknown sender {sender}")
        if not alive.get(sender):
            self.stats.drops_dead_node += 1
            return 0

        if dest == BROADCAST:
            targets = [n for n in self.graph.neighbors(sender) if alive.get(n)]
            self.stats.broadcasts += 1
            if self.metrics.enabled:
                self.metrics.observe("channel.fanout", len(targets))
        else:
            if not self.graph.has_edge(sender, dest):
                self.stats.drops_no_link += 1
                # The transmission still happens (and is still paid for); it
                # simply reaches nobody, as on a real radio.
                targets = []
            elif not alive.get(dest):
                self.stats.drops_dead_node += 1
                targets = []
            else:
                targets = [dest]
            self.stats.unicasts += 1

        tx_cost = self.energy_model.transmit_cost(payload_bytes, len(targets))
        self.ledger.node(sender).charge_tx(kind, tx_cost)
        if self.tracer.enabled:
            self.tracer.record(
                self.sim.now,
                "channel.tx",
                sender,
                dest=dest,
                kind=kind,
                targets=len(targets),
            )

        if targets and self.loss_probability > 0.0:
            # One vectorised draw per transmission; numpy's Generator yields
            # the same stream as per-target random() calls, so lossy runs
            # stay bit-identical to the per-receiver event formulation.
            draws = self.rng.random(len(targets))
            survivors = [
                target
                for target, draw in zip(targets, draws)
                if draw >= self.loss_probability
            ]
            self.stats.drops_loss += len(targets) - len(survivors)
            targets = survivors
        if targets:
            self._schedule_delivery(sender, targets, frame, kind, payload_bytes)
        return len(targets)

    def _schedule_delivery(
        self,
        sender: NodeId,
        targets: List[NodeId],
        frame: Any,
        kind: str,
        payload_bytes: int,
    ) -> None:
        """Schedule one batched delivery event for a transmission's fan-out.

        Reception energy is charged here, per target, at delivery time: a
        target that died while the frame was in flight is counted as
        ``drops_dead_node`` and never charged, keeping the ledger and the
        delivery stats consistent.
        """
        rx_cost = self.energy_model.receive_cost(payload_bytes)
        if not self.batched_delivery:
            # Reference formulation: one event per receiver, in the same
            # order the batched event walks them.  Both paths must yield
            # bit-identical results (guarded by the determinism tests).
            for target in targets:
                self._schedule_single_delivery(sender, target, frame, kind, rx_cost)
            return

        def deliver() -> None:
            alive = self._alive
            receivers = self._receivers
            stats = self.stats
            tracer = self.tracer
            ledger = self.ledger
            ledger_nodes = ledger._nodes
            rx_key = ("rx", kind)
            now = self.sim.now
            traced = tracer.enabled
            for target in targets:
                if not alive.get(target):
                    stats.drops_dead_node += 1
                    continue
                # Inlined ledger.node(target).charge_rx(kind, rx_cost): one
                # reception is charged per frame per alive target, and this
                # loop runs for every reception of a trial.
                node_ledger = ledger_nodes.get(target)
                if node_ledger is None:
                    node_ledger = ledger.node(target)
                entry = node_ledger._entries[rx_key]
                entry.count += 1
                entry.cost += rx_cost
                receiver = receivers.get(target)
                if receiver is None:
                    continue
                stats.deliveries += 1
                if traced:
                    tracer.record(
                        now, "channel.rx", target, sender=sender, kind=kind
                    )
                receiver(sender, frame)

        label = self._delivery_labels.get(kind)
        if label is None:
            label = self._delivery_labels[kind] = f"deliver[{kind}]"
        self.sim.schedule_after(
            self.propagation_delay,
            deliver,
            priority=EventPriority.MAC,
            label=label,
        )

    def _schedule_single_delivery(
        self, sender: NodeId, target: NodeId, frame: Any, kind: str, rx_cost: float
    ) -> None:
        """Unbatched reference delivery of one frame to one target."""

        def deliver() -> None:
            if not self._alive.get(target):
                self.stats.drops_dead_node += 1
                return
            self.ledger.node(target).charge_rx(kind, rx_cost)
            receiver = self._receivers.get(target)
            if receiver is None:
                return
            self.stats.deliveries += 1
            if self.tracer.enabled:
                self.tracer.record(
                    self.sim.now, "channel.rx", target, sender=sender, kind=kind
                )
            receiver(sender, frame)

        self.sim.schedule_after(
            self.propagation_delay,
            deliver,
            priority=EventPriority.MAC,
            label=f"deliver[{kind}] {sender}->{target}",
        )
