"""Link state, the radio-range link predicate, and neighbour tables.

Each node keeps a :class:`NeighborTable` describing the one-hop neighbours it
currently believes are alive.  In the paper this information is owned by the
LMAC layer (slot occupancy implicitly names the neighbourhood) and consumed
by DirQ through the cross-layer interface; here the table is a standalone
structure shared by the MAC protocol and the routing layers.

This module is also the home of :func:`within_range` -- the **single**
unit-disk link predicate every connectivity path must use (see below).
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, Iterator, List, Optional, Tuple

from .addresses import NodeId

Position = Tuple[float, float]


def within_range(pos_a: Position, pos_b: Position, comm_range: float) -> bool:
    """The unit-disk link predicate: are two positions within radio range?

    Contract (shared by every connectivity path)
    --------------------------------------------
    * **Inclusive**: a pair at distance *exactly* ``comm_range`` is linked.
      The paper's unit-disk model does not specify the boundary; we pin the
      inclusive convention so ties are a defined, testable behaviour.
    * **One float formulation**: the distance is evaluated as
      ``sqrt(dx*dx + dy*dy)`` in float64, the same operation order (and
      therefore the same rounding) as the vectorised brute-force builder
      ``np.sqrt(((a - b) ** 2).sum(-1))``.  Alternative formulations such
      as :func:`math.dist`/:func:`math.hypot` round differently in the last
      ulp, which historically let a node sit exactly on the range boundary
      and be a neighbour on one code path but not on another.  Every caller
      (brute-force O(n^2) builder, spatial hash, ``Topology.with_node``,
      ``WirelessChannel.add_node``) must route range checks through this
      function so the tie behaviour can never diverge again.
    """
    dx = float(pos_a[0]) - float(pos_b[0])
    dy = float(pos_a[1]) - float(pos_b[1])
    return math.sqrt(dx * dx + dy * dy) <= comm_range


@dataclasses.dataclass
class NeighborEntry:
    """State kept about a single one-hop neighbour.

    Attributes
    ----------
    node_id:
        The neighbour's identifier.
    last_heard:
        Simulated time at which a transmission from this neighbour was last
        received.
    slot:
        The LMAC slot the neighbour owns, if known.
    link_quality:
        Smoothed delivery estimate in [0, 1]; 1.0 for the ideal unit-disk
        channel.
    """

    node_id: NodeId
    last_heard: float = 0.0
    slot: Optional[int] = None
    link_quality: float = 1.0


class NeighborTable:
    """One node's view of its one-hop neighbourhood."""

    def __init__(self, owner: NodeId):
        self.owner = owner
        self._entries: Dict[NodeId, NeighborEntry] = {}
        self._ids_cache: Optional[List[NodeId]] = None

    # -- mutation ------------------------------------------------------------

    def observe(
        self,
        node_id: NodeId,
        time: float,
        slot: Optional[int] = None,
        quality_sample: Optional[float] = None,
        smoothing: float = 0.25,
    ) -> NeighborEntry:
        """Record that a transmission from ``node_id`` was heard at ``time``.

        Creates the entry if the neighbour is new.  ``quality_sample`` (0 or
        1 for a lost/heard expected transmission) updates the smoothed link
        quality with an exponential moving average.
        """
        if node_id == self.owner:
            raise ValueError("a node cannot be its own neighbour")
        entry = self._entries.get(node_id)
        if entry is None:
            entry = NeighborEntry(node_id=node_id, last_heard=time, slot=slot)
            self._entries[node_id] = entry
            self._ids_cache = None
        else:
            if time > entry.last_heard:
                entry.last_heard = time
            if slot is not None:
                entry.slot = slot
        if quality_sample is not None:
            q = min(max(float(quality_sample), 0.0), 1.0)
            entry.link_quality = (1 - smoothing) * entry.link_quality + smoothing * q
        return entry

    def remove(self, node_id: NodeId) -> bool:
        """Forget a neighbour (e.g. after the MAC declares it dead)."""
        removed = self._entries.pop(node_id, None) is not None
        if removed:
            self._ids_cache = None
        return removed

    def clear(self) -> None:
        self._entries.clear()
        self._ids_cache = None

    # -- queries ---------------------------------------------------------------

    def __contains__(self, node_id: NodeId) -> bool:
        return node_id in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[NodeId]:
        return iter(sorted(self._entries))

    def get(self, node_id: NodeId) -> Optional[NeighborEntry]:
        return self._entries.get(node_id)

    @property
    def neighbor_ids(self) -> List[NodeId]:
        """Sorted identifiers of all currently known neighbours.

        Cached between membership changes: the MAC death scan walks this
        every beacon period for every node.
        """
        cached = self._ids_cache
        if cached is None:
            cached = self._ids_cache = sorted(self._entries)
        return list(cached)

    def stale(self, now: float, timeout: float) -> List[NodeId]:
        """Neighbours not heard from within ``timeout`` time units of ``now``."""
        return sorted(
            nid
            for nid, e in self._entries.items()
            if now - e.last_heard > timeout
        )

    def occupied_slots(self) -> set[int]:
        """LMAC slots known to be owned by neighbours."""
        return {e.slot for e in self._entries.values() if e.slot is not None}
