"""Spanning-tree construction and maintenance.

DirQ operates over a communication spanning tree rooted at the sink: range
information flows up the tree, queries flow down it (paper §4).  This module
provides

* :class:`SpanningTree` -- the tree itself (parent/children maps) with the
  traversal helpers the routing layers and the metrics need (subtree
  enumeration, path to root, depth, forwarding sets);
* :func:`build_bfs_tree` -- centralized breadth-first construction from a
  :class:`~repro.network.topology.Topology` (how the experiment runner sets
  up the initial tree, mirroring the paper's "once the nodes have been
  placed, a spanning tree is set up");
* :class:`TreeSetupProtocol` -- a distributed construction protocol that
  builds the same tree by flooding a setup beacon, used by the examples and
  integration tests to demonstrate (and cost) in-network tree setup;
* :meth:`SpanningTree.repair` -- re-attachment of subtrees orphaned by node
  death, driven by the MAC layer's cross-layer notifications.
"""

from __future__ import annotations

import dataclasses
from collections import deque
from typing import Dict, Iterable, List, Optional, Sequence, Set

import networkx as nx

from .addresses import NodeId
from .topology import Topology


class TreeError(RuntimeError):
    """Raised for structurally invalid tree operations."""


@dataclasses.dataclass
class SpanningTree:
    """Rooted spanning tree over a set of node identifiers.

    The tree is represented by a parent map (root maps to ``None``); children
    lists are derived and kept sorted for determinism.
    """

    root: NodeId
    parent: Dict[NodeId, Optional[NodeId]]

    def __post_init__(self) -> None:
        if self.root not in self.parent:
            raise TreeError(f"root {self.root} missing from parent map")
        if self.parent[self.root] is not None:
            raise TreeError("root must have no parent")
        self._children: Dict[NodeId, List[NodeId]] = {n: [] for n in self.parent}
        for node, par in self.parent.items():
            if node == self.root:
                continue
            if par is None:
                raise TreeError(f"non-root node {node} has no parent")
            if par not in self.parent:
                raise TreeError(f"node {node} has unknown parent {par}")
            self._children[par].append(node)
        for kids in self._children.values():
            kids.sort()
        self._validate_acyclic()

    def _validate_acyclic(self) -> None:
        for node in self.parent:
            seen = set()
            cur: Optional[NodeId] = node
            while cur is not None:
                if cur in seen:
                    raise TreeError(f"cycle detected through node {cur}")
                seen.add(cur)
                cur = self.parent[cur]
            if self.root not in seen:
                raise TreeError(f"node {node} is not connected to the root")

    # -- basic structure -------------------------------------------------------

    @property
    def node_ids(self) -> List[NodeId]:
        return sorted(self.parent)

    @property
    def num_nodes(self) -> int:
        return len(self.parent)

    def __contains__(self, node_id: NodeId) -> bool:
        return node_id in self.parent

    def children(self, node_id: NodeId) -> List[NodeId]:
        """Immediate (one-hop) children of ``node_id``, sorted."""
        if node_id not in self.parent:
            raise KeyError(f"unknown node {node_id}")
        return list(self._children[node_id])

    def parent_of(self, node_id: NodeId) -> Optional[NodeId]:
        if node_id not in self.parent:
            raise KeyError(f"unknown node {node_id}")
        return self.parent[node_id]

    def is_leaf(self, node_id: NodeId) -> bool:
        return not self._children[node_id]

    @property
    def leaves(self) -> List[NodeId]:
        return sorted(n for n in self.parent if self.is_leaf(n))

    def depth_of(self, node_id: NodeId) -> int:
        """Hop distance from the root (root has depth 0)."""
        depth = 0
        cur = self.parent_of(node_id)
        while cur is not None:
            depth += 1
            cur = self.parent[cur]
        return depth

    @property
    def depth(self) -> int:
        """Maximum node depth (a single-node tree has depth 0)."""
        return max((self.depth_of(n) for n in self.parent), default=0)

    @property
    def max_branching(self) -> int:
        """Maximum number of children of any node."""
        return max((len(kids) for kids in self._children.values()), default=0)

    # -- traversal ---------------------------------------------------------------

    def path_to_root(self, node_id: NodeId) -> List[NodeId]:
        """Nodes on the path from ``node_id`` (inclusive) up to the root."""
        path = [node_id]
        cur = self.parent_of(node_id)
        while cur is not None:
            path.append(cur)
            cur = self.parent[cur]
        return path

    def subtree(self, node_id: NodeId) -> List[NodeId]:
        """All nodes in the subtree rooted at ``node_id`` (inclusive), BFS order."""
        if node_id not in self.parent:
            raise KeyError(f"unknown node {node_id}")
        out: List[NodeId] = []
        queue = deque([node_id])
        while queue:
            cur = queue.popleft()
            out.append(cur)
            queue.extend(self._children[cur])
        return out

    def descendants(self, node_id: NodeId) -> List[NodeId]:
        """Subtree of ``node_id`` excluding the node itself."""
        return self.subtree(node_id)[1:]

    def forwarding_set(self, sources: Iterable[NodeId]) -> Set[NodeId]:
        """All nodes involved in routing a query from the root to ``sources``.

        This is the union of the root-to-source paths, i.e. the sources plus
        every intermediate forwarding node plus the root — the set the paper
        calls the "relevant nodes" when defining accuracy (§7.1).
        """
        involved: Set[NodeId] = set()
        for src in sources:
            involved.update(self.path_to_root(src))
        return involved

    def levels(self) -> Dict[int, List[NodeId]]:
        """Mapping depth -> sorted nodes at that depth."""
        by_level: Dict[int, List[NodeId]] = {}
        for node in self.parent:
            by_level.setdefault(self.depth_of(node), []).append(node)
        for nodes in by_level.values():
            nodes.sort()
        return by_level

    def to_networkx(self) -> nx.DiGraph:
        """Directed graph with edges parent -> child (for analysis/plots)."""
        g = nx.DiGraph()
        g.add_nodes_from(self.parent)
        for node, par in self.parent.items():
            if par is not None:
                g.add_edge(par, node)
        return g

    # -- maintenance ----------------------------------------------------------------

    def without_subtree(self, node_id: NodeId) -> "SpanningTree":
        """Copy of the tree with ``node_id`` and its whole subtree removed."""
        if node_id == self.root:
            raise TreeError("cannot remove the root's subtree")
        doomed = set(self.subtree(node_id))
        parent = {n: p for n, p in self.parent.items() if n not in doomed}
        return SpanningTree(root=self.root, parent=parent)

    def repair(self, dead_node: NodeId, topology_neighbors) -> "SpanningTree":
        """Re-attach the subtrees orphaned by ``dead_node``'s death.

        Parameters
        ----------
        dead_node:
            The node that died.
        topology_neighbors:
            Callable ``node_id -> iterable of alive neighbour ids`` giving
            current radio connectivity (typically
            :meth:`repro.network.channel.WirelessChannel.neighbors`).

        Returns
        -------
        SpanningTree
            A new tree over the surviving nodes.  Orphaned nodes re-attach
            greedily to the closest-to-root alive neighbour that is still
            connected to the root; nodes that cannot reach the root at all
            are dropped from the tree (they are partitioned).
        """
        if dead_node == self.root:
            raise TreeError("cannot repair after root death; the sink is fixed")
        if dead_node not in self.parent:
            raise KeyError(f"unknown node {dead_node}")

        survivors = [n for n in self.parent if n != dead_node]
        # Start from the forest left after removing the dead node: every
        # surviving node keeps its parent unless the parent was the dead node.
        parent: Dict[NodeId, Optional[NodeId]] = {}
        for node in survivors:
            par = self.parent[node]
            parent[node] = None if par == dead_node else par

        attached: Set[NodeId] = set()

        def root_reachable(node: NodeId) -> bool:
            seen = set()
            cur: Optional[NodeId] = node
            while cur is not None:
                if cur in attached or cur == self.root:
                    return True
                if cur in seen:
                    return False
                seen.add(cur)
                cur = parent.get(cur)
            return False

        attached.update(n for n in survivors if root_reachable(n))

        orphans = deque(sorted(n for n in survivors if n not in attached))
        progress = True
        while orphans and progress:
            progress = False
            for _ in range(len(orphans)):
                node = orphans.popleft()
                candidates = [
                    nb
                    for nb in topology_neighbors(node)
                    if nb in attached and nb != dead_node
                ]
                if not candidates:
                    orphans.append(node)
                    continue
                # Prefer the neighbour closest to the root for short paths,
                # breaking ties by id for determinism.
                candidates.sort(key=lambda nb: (self._depth_in(parent, nb), nb))
                parent[node] = candidates[0]
                attached.add(node)
                progress = True

        # Anything still orphaned is partitioned from the root: drop it.
        reachable_parent = {n: p for n, p in parent.items() if n in attached}
        reachable_parent[self.root] = None
        return SpanningTree(root=self.root, parent=reachable_parent)

    @staticmethod
    def _depth_in(parent: Dict[NodeId, Optional[NodeId]], node: NodeId) -> int:
        depth = 0
        cur = parent.get(node)
        seen = set()
        while cur is not None and cur not in seen:
            seen.add(cur)
            depth += 1
            cur = parent.get(cur)
        return depth

    def with_new_node(self, node_id: NodeId, attach_to: NodeId) -> "SpanningTree":
        """Copy of the tree with ``node_id`` added as a child of ``attach_to``."""
        if node_id in self.parent:
            raise TreeError(f"node {node_id} already in tree")
        if attach_to not in self.parent:
            raise KeyError(f"unknown attachment point {attach_to}")
        parent = dict(self.parent)
        parent[node_id] = attach_to
        return SpanningTree(root=self.root, parent=parent)


# ---------------------------------------------------------------------------
# Construction
# ---------------------------------------------------------------------------


def build_bfs_tree(
    topology: Topology,
    root: NodeId = 0,
    alive: Optional[Set[NodeId]] = None,
    partial: bool = False,
) -> SpanningTree:
    """Breadth-first spanning tree of ``topology`` rooted at ``root``.

    Ties (several potential parents at the same depth) are broken by the
    lowest parent id, which makes the construction deterministic and matches
    what the distributed :class:`TreeSetupProtocol` converges to on an ideal
    channel.

    Parameters
    ----------
    alive:
        Restrict the tree to these nodes (the root is always included);
        ``None`` spans the whole topology.
    partial:
        Tolerate unreachable members by leaving them out of the tree
        instead of raising :class:`TreeError` -- what the mobility
        scenarios need, where a re-link can transiently partition nodes.
    """
    if not topology.has_node(root):
        raise KeyError(f"root {root} not in topology")
    members = set(topology.node_ids) if alive is None else set(alive)
    parent: Dict[NodeId, Optional[NodeId]] = {root: None}
    frontier = deque([root])
    while frontier:
        cur = frontier.popleft()
        for nb in topology.neighbors(cur):
            if nb in members and nb not in parent:
                parent[nb] = cur
                frontier.append(nb)
    missing = members - set(parent)
    if missing and not partial:
        raise TreeError(
            f"topology is not connected; unreachable nodes: {sorted(missing)}"
        )
    return SpanningTree(root=root, parent=parent)


@dataclasses.dataclass(frozen=True)
class TreeBeacon:
    """Setup beacon flooded during distributed tree construction."""

    origin: NodeId
    hops: int


class TreeSetupProtocol:
    """Distributed spanning-tree setup by beacon flooding.

    The root broadcasts a :class:`TreeBeacon` with hop count 0; every node
    adopts the first sender offering the smallest hop count (ties broken by
    lowest sender id) as its parent and rebroadcasts with ``hops + 1``.  On
    an ideal channel this converges to the same tree as
    :func:`build_bfs_tree`; its purpose here is to let examples and tests
    demonstrate and *cost* the setup phase the paper only mentions in
    passing.

    The protocol is driven directly against a
    :class:`~repro.network.channel.WirelessChannel`.
    """

    MESSAGE_KIND = "tree_setup"

    def __init__(self, channel, root: NodeId = 0):
        self.channel = channel
        self.root = root
        self.best_hops: Dict[NodeId, int] = {root: 0}
        self.parent: Dict[NodeId, Optional[NodeId]] = {root: None}

    def run(self) -> SpanningTree:
        """Execute the setup flood and return the resulting tree."""
        for nid in self.channel.graph.nodes:
            if self.channel.is_alive(nid):
                self.channel.register(nid, self._make_receiver(nid))
        self.channel.broadcast(
            self.root, TreeBeacon(origin=self.root, hops=0), self.MESSAGE_KIND
        )
        self.channel.sim.run()
        alive = {n for n in self.channel.graph.nodes if self.channel.is_alive(n)}
        missing = alive - set(self.parent)
        if missing:
            raise TreeError(
                f"tree setup did not reach nodes {sorted(missing)}; "
                "topology may be disconnected"
            )
        return SpanningTree(root=self.root, parent=dict(self.parent))

    def _make_receiver(self, node_id: NodeId):
        def receive(sender: NodeId, frame) -> None:
            if not isinstance(frame, TreeBeacon):
                return
            hops = frame.hops + 1
            best = self.best_hops.get(node_id)
            current_parent = self.parent.get(node_id)
            better = best is None or hops < best or (
                hops == best and current_parent is not None and sender < current_parent
            )
            if node_id == self.root or not better:
                return
            first_adoption = best is None
            self.best_hops[node_id] = hops
            self.parent[node_id] = sender
            if first_adoption:
                self.channel.broadcast(
                    node_id, TreeBeacon(origin=node_id, hops=hops), self.MESSAGE_KIND
                )

        return receive
