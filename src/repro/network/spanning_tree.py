"""Spanning-tree construction and maintenance.

DirQ operates over a communication spanning tree rooted at the sink: range
information flows up the tree, queries flow down it (paper §4).  This module
provides

* :class:`SpanningTree` -- the tree itself (parent/children maps) with the
  traversal helpers the routing layers and the metrics need (subtree
  enumeration, path to root, depth, forwarding sets);
* :func:`build_bfs_tree` -- centralized breadth-first construction from a
  :class:`~repro.network.topology.Topology` (how the experiment runner sets
  up the initial tree, mirroring the paper's "once the nodes have been
  placed, a spanning tree is set up");
* :class:`TreeSetupProtocol` -- a distributed construction protocol that
  builds the same tree by flooding a setup beacon, used by the examples and
  integration tests to demonstrate (and cost) in-network tree setup;
* :meth:`SpanningTree.repair` -- re-attachment of subtrees orphaned by node
  death, driven by the MAC layer's cross-layer notifications.
"""

from __future__ import annotations

import dataclasses
import heapq
from collections import deque
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import networkx as nx

from .addresses import NodeId
from .topology import Topology


class TreeError(RuntimeError):
    """Raised for structurally invalid tree operations."""


@dataclasses.dataclass
class SpanningTree:
    """Rooted spanning tree over a set of node identifiers.

    The tree is represented by a parent map (root maps to ``None``); children
    lists are derived and kept sorted for determinism.
    """

    root: NodeId
    parent: Dict[NodeId, Optional[NodeId]]

    def __post_init__(self) -> None:
        if self.root not in self.parent:
            raise TreeError(f"root {self.root} missing from parent map")
        if self.parent[self.root] is not None:
            raise TreeError("root must have no parent")
        self._children: Dict[NodeId, List[NodeId]] = {n: [] for n in self.parent}
        for node, par in self.parent.items():
            if node == self.root:
                continue
            if par is None:
                raise TreeError(f"non-root node {node} has no parent")
            if par not in self.parent:
                raise TreeError(f"node {node} has unknown parent {par}")
            self._children[par].append(node)
        for kids in self._children.values():
            kids.sort()
        self._validate_acyclic()

    def _validate_acyclic(self) -> None:
        # Memoized: a node on an already-validated root chain never needs
        # re-walking, so validation is O(n) total rather than O(n * depth)
        # -- construction cost matters now that large-N mobility re-links
        # build trees with thousands of nodes.
        ok: Set[NodeId] = set()
        for node in self.parent:
            chain: List[NodeId] = []
            on_chain: Set[NodeId] = set()
            cur: Optional[NodeId] = node
            while cur is not None and cur not in ok:
                if cur in on_chain:
                    raise TreeError(f"cycle detected through node {cur}")
                on_chain.add(cur)
                chain.append(cur)
                cur = self.parent[cur]
            if cur is None and chain and chain[-1] != self.root:
                raise TreeError(f"node {node} is not connected to the root")
            ok.update(chain)

    # -- basic structure -------------------------------------------------------

    @property
    def node_ids(self) -> List[NodeId]:
        return sorted(self.parent)

    @property
    def num_nodes(self) -> int:
        return len(self.parent)

    def __contains__(self, node_id: NodeId) -> bool:
        return node_id in self.parent

    def children(self, node_id: NodeId) -> List[NodeId]:
        """Immediate (one-hop) children of ``node_id``, sorted."""
        if node_id not in self.parent:
            raise KeyError(f"unknown node {node_id}")
        return list(self._children[node_id])

    def parent_of(self, node_id: NodeId) -> Optional[NodeId]:
        if node_id not in self.parent:
            raise KeyError(f"unknown node {node_id}")
        return self.parent[node_id]

    def is_leaf(self, node_id: NodeId) -> bool:
        return not self._children[node_id]

    @property
    def leaves(self) -> List[NodeId]:
        return sorted(n for n in self.parent if self.is_leaf(n))

    def depth_of(self, node_id: NodeId) -> int:
        """Hop distance from the root (root has depth 0)."""
        depth = 0
        cur = self.parent_of(node_id)
        while cur is not None:
            depth += 1
            cur = self.parent[cur]
        return depth

    @property
    def depth(self) -> int:
        """Maximum node depth (a single-node tree has depth 0)."""
        return max((self.depth_of(n) for n in self.parent), default=0)

    @property
    def max_branching(self) -> int:
        """Maximum number of children of any node."""
        return max((len(kids) for kids in self._children.values()), default=0)

    # -- traversal ---------------------------------------------------------------

    def path_to_root(self, node_id: NodeId) -> List[NodeId]:
        """Nodes on the path from ``node_id`` (inclusive) up to the root."""
        path = [node_id]
        cur = self.parent_of(node_id)
        while cur is not None:
            path.append(cur)
            cur = self.parent[cur]
        return path

    def subtree(self, node_id: NodeId) -> List[NodeId]:
        """All nodes in the subtree rooted at ``node_id`` (inclusive), BFS order."""
        if node_id not in self.parent:
            raise KeyError(f"unknown node {node_id}")
        out: List[NodeId] = []
        queue = deque([node_id])
        while queue:
            cur = queue.popleft()
            out.append(cur)
            queue.extend(self._children[cur])
        return out

    def descendants(self, node_id: NodeId) -> List[NodeId]:
        """Subtree of ``node_id`` excluding the node itself."""
        return self.subtree(node_id)[1:]

    def forwarding_set(self, sources: Iterable[NodeId]) -> Set[NodeId]:
        """All nodes involved in routing a query from the root to ``sources``.

        This is the union of the root-to-source paths, i.e. the sources plus
        every intermediate forwarding node plus the root — the set the paper
        calls the "relevant nodes" when defining accuracy (§7.1).
        """
        involved: Set[NodeId] = set()
        for src in sources:
            involved.update(self.path_to_root(src))
        return involved

    def levels(self) -> Dict[int, List[NodeId]]:
        """Mapping depth -> sorted nodes at that depth."""
        by_level: Dict[int, List[NodeId]] = {}
        for node in self.parent:
            by_level.setdefault(self.depth_of(node), []).append(node)
        for nodes in by_level.values():
            nodes.sort()
        return by_level

    def to_networkx(self) -> nx.DiGraph:
        """Directed graph with edges parent -> child (for analysis/plots)."""
        g = nx.DiGraph()
        g.add_nodes_from(self.parent)
        for node, par in self.parent.items():
            if par is not None:
                g.add_edge(par, node)
        return g

    # -- maintenance ----------------------------------------------------------------

    def without_subtree(self, node_id: NodeId) -> "SpanningTree":
        """Copy of the tree with ``node_id`` and its whole subtree removed."""
        if node_id == self.root:
            raise TreeError("cannot remove the root's subtree")
        doomed = set(self.subtree(node_id))
        parent = {n: p for n, p in self.parent.items() if n not in doomed}
        return SpanningTree(root=self.root, parent=parent)

    def repair(self, dead_node: NodeId, topology_neighbors) -> "SpanningTree":
        """Re-attach the subtrees orphaned by ``dead_node``'s death.

        Parameters
        ----------
        dead_node:
            The node that died.
        topology_neighbors:
            Callable ``node_id -> iterable of alive neighbour ids`` giving
            current radio connectivity (typically
            :meth:`repro.network.channel.WirelessChannel.neighbors`).

        Returns
        -------
        SpanningTree
            A new tree over the surviving nodes.  Orphaned nodes re-attach
            greedily to the closest-to-root alive neighbour that is still
            connected to the root; nodes that cannot reach the root at all
            are dropped from the tree (they are partitioned).
        """
        if dead_node == self.root:
            raise TreeError("cannot repair after root death; the sink is fixed")
        if dead_node not in self.parent:
            raise KeyError(f"unknown node {dead_node}")

        survivors = [n for n in self.parent if n != dead_node]
        # Start from the forest left after removing the dead node: every
        # surviving node keeps its parent unless the parent was the dead node.
        parent: Dict[NodeId, Optional[NodeId]] = {}
        for node in survivors:
            par = self.parent[node]
            parent[node] = None if par == dead_node else par

        attached: Set[NodeId] = set()

        def root_reachable(node: NodeId) -> bool:
            seen = set()
            cur: Optional[NodeId] = node
            while cur is not None:
                if cur in attached or cur == self.root:
                    return True
                if cur in seen:
                    return False
                seen.add(cur)
                cur = parent.get(cur)
            return False

        attached.update(n for n in survivors if root_reachable(n))

        orphans = deque(sorted(n for n in survivors if n not in attached))
        progress = True
        while orphans and progress:
            progress = False
            for _ in range(len(orphans)):
                node = orphans.popleft()
                candidates = [
                    nb
                    for nb in topology_neighbors(node)
                    if nb in attached and nb != dead_node
                ]
                if not candidates:
                    orphans.append(node)
                    continue
                # Prefer the neighbour closest to the root for short paths,
                # breaking ties by id for determinism.
                candidates.sort(key=lambda nb: (self._depth_in(parent, nb), nb))
                parent[node] = candidates[0]
                attached.add(node)
                progress = True

        # Anything still orphaned is partitioned from the root: drop it.
        reachable_parent = {n: p for n, p in parent.items() if n in attached}
        reachable_parent[self.root] = None
        return SpanningTree(root=self.root, parent=reachable_parent)

    @staticmethod
    def _depth_in(parent: Dict[NodeId, Optional[NodeId]], node: NodeId) -> int:
        depth = 0
        cur = parent.get(node)
        seen = set()
        while cur is not None and cur not in seen:
            seen.add(cur)
            depth += 1
            cur = parent.get(cur)
        return depth

    def with_new_node(self, node_id: NodeId, attach_to: NodeId) -> "SpanningTree":
        """Copy of the tree with ``node_id`` added as a child of ``attach_to``."""
        if node_id in self.parent:
            raise TreeError(f"node {node_id} already in tree")
        if attach_to not in self.parent:
            raise KeyError(f"unknown attachment point {attach_to}")
        parent = dict(self.parent)
        parent[node_id] = attach_to
        return SpanningTree(root=self.root, parent=parent)


# ---------------------------------------------------------------------------
# Construction
# ---------------------------------------------------------------------------


def build_bfs_tree(
    topology: Topology,
    root: NodeId = 0,
    alive: Optional[Set[NodeId]] = None,
    partial: bool = False,
) -> SpanningTree:
    """Breadth-first spanning tree of ``topology`` rooted at ``root``.

    Ties (several potential parents at the same depth) are broken by the
    lowest parent id, which makes the construction deterministic and matches
    what the distributed :class:`TreeSetupProtocol` converges to on an ideal
    channel.

    Parameters
    ----------
    alive:
        Restrict the tree to these nodes (the root is always included);
        ``None`` spans the whole topology.
    partial:
        Tolerate unreachable members by leaving them out of the tree
        instead of raising :class:`TreeError` -- what the mobility
        scenarios need, where a re-link can transiently partition nodes.
    """
    if not topology.has_node(root):
        raise KeyError(f"root {root} not in topology")
    members = set(topology.node_ids) if alive is None else set(alive)
    parent: Dict[NodeId, Optional[NodeId]] = {root: None}
    frontier = deque([root])
    while frontier:
        cur = frontier.popleft()
        for nb in topology.neighbors(cur):
            if nb in members and nb not in parent:
                parent[nb] = cur
                frontier.append(nb)
    missing = members - set(parent)
    if missing and not partial:
        raise TreeError(
            f"topology is not connected; unreachable nodes: {sorted(missing)}"
        )
    return SpanningTree(root=root, parent=parent)


def _tree_depths(tree: SpanningTree) -> Dict[NodeId, int]:
    """Depth of every node in ``tree`` in one O(n) top-down pass."""
    depths: Dict[NodeId, int] = {tree.root: 0}
    frontier = deque([tree.root])
    while frontier:
        cur = frontier.popleft()
        d = depths[cur] + 1
        for child in tree.children(cur):
            depths[child] = d
            frontier.append(child)
    return depths


def update_bfs_tree(
    previous: Optional[SpanningTree],
    topology: Topology,
    root: NodeId = 0,
    alive: Optional[Set[NodeId]] = None,
    dirty: Iterable[NodeId] = (),
    partial: bool = False,
    rebuild_threshold: float = 0.25,
) -> SpanningTree:
    """Incrementally repair a BFS spanning tree after a topology delta.

    Produces a tree **identical** to ``build_bfs_tree(topology, root, alive,
    partial)`` -- same parents, not just same depths -- while re-examining
    only the neighbourhood of the change, so a mobility re-link that moves a
    handful of nodes costs O(affected) instead of O(V + E).

    Parameters
    ----------
    previous:
        The tree to repair.  **Must be BFS-canonical** for the pre-delta
        topology and membership, i.e. exactly what ``build_bfs_tree``
        produced -- a tree patched by the greedy :meth:`SpanningTree.repair`
        or :meth:`SpanningTree.with_new_node` is not, and callers must fall
        back to a full build in that case (the experiment runner tracks
        this with a canonical-tree flag).  ``None`` falls back to a full
        build.
    dirty:
        Nodes whose radio neighbourhood may have changed -- the endpoints
        of every added/removed link (``Topology.with_positions_delta``
        returns exactly this set).  Membership changes relative to
        ``previous`` (killed/revived nodes) are detected here and need not
        be included.
    rebuild_threshold:
        Fall back to a full build when the changed set exceeds this
        fraction of the membership; past that point the full O(V + E) BFS
        is cheaper than the repair bookkeeping.

    Why equality holds
    ------------------
    ``build_bfs_tree`` pops a FIFO frontier of sorted-neighbour lists, so a
    node's parent is its smallest-*pathkey* neighbour one level up, where a
    node's pathkey is the id tuple of its root path (root's key is
    ``(root,)``, a child's key is the parent's key plus its own id).  The
    repair recomputes depths with a bounded Dijkstra pass (a non-orphaned
    node's old depth is a valid upper bound; only nodes adjacent to the
    change can improve) and then re-derives parents by minimum pathkey for
    exactly the nodes whose candidate sets or candidate keys changed,
    cascading down while keys keep changing.  Every other node keeps a
    parent whose candidate set and keys are untouched, so its canonical
    parent is unchanged.
    """
    if not topology.has_node(root):
        raise KeyError(f"root {root} not in topology")
    members = set(topology.node_ids) if alive is None else set(alive)
    members.add(root)

    def full_build() -> SpanningTree:
        return build_bfs_tree(topology, root=root, alive=alive, partial=partial)

    if previous is None or previous.root != root:
        return full_build()

    prev_members = set(previous.parent)
    dirty_members = (set(dirty) & members) | (members ^ prev_members)
    if len(dirty_members) > rebuild_threshold * max(1, len(members)):
        return full_build()
    if not dirty_members:
        return previous

    graph = topology.graph
    old_depth = _tree_depths(previous)

    # -- Phase 1: orphan detection (old depth no longer certainly valid) ----
    # A node keeps its old depth as a valid upper bound iff some alive
    # neighbour one level up (by old depth) keeps its own.  Processing
    # candidates in ascending old depth makes every verdict final: a node's
    # potential supporters all have smaller old depth, already decided.
    orphaned: Set[NodeId] = set()
    decided: Set[NodeId] = set()
    cand_heap: List[Tuple[int, NodeId]] = []
    for v in sorted(dirty_members):
        if v in old_depth:
            heapq.heappush(cand_heap, (old_depth[v], v))
    removed = prev_members - members
    for r in sorted(removed):
        for child in previous.children(r):
            if child in members:
                heapq.heappush(cand_heap, (old_depth[child], child))
    while cand_heap:
        d, v = heapq.heappop(cand_heap)
        if v in decided or v == root:
            continue
        decided.add(v)
        supported = False
        for u in topology.neighbors(v):
            if (
                u in members
                and u not in orphaned
                and old_depth.get(u) == d - 1
            ):
                supported = True
                break
        if supported:
            continue
        orphaned.add(v)
        for w in topology.neighbors(v):
            if (
                w in members
                and w not in decided
                and old_depth.get(w) == d + 1
            ):
                heapq.heappush(cand_heap, (d + 1, w))

    # -- Phase 2: depth repair (bounded Dijkstra, unit weights) -------------
    # Non-orphans start at their old depth (a proven upper bound); orphans
    # and new members start unknown.  Seeds are the only places a shortest
    # path can change: dirty nodes (new-edge endpoints can shorten paths)
    # and known nodes bordering the unknown region (they re-reach it).
    new_depth: Dict[NodeId, int] = {root: 0}
    for v, d in old_depth.items():
        if v in members and v not in orphaned:
            new_depth[v] = d
    unknown = set(orphaned)
    unknown.update(members - set(old_depth))
    unknown.discard(root)

    seeds: Set[NodeId] = {v for v in sorted(dirty_members) if v in new_depth}
    for v in sorted(unknown):
        for u in graph.neighbors(v):
            if u in new_depth:
                seeds.add(u)
    dist_heap: List[Tuple[int, NodeId]] = [
        (new_depth[v], v) for v in sorted(seeds)
    ]
    heapq.heapify(dist_heap)
    while dist_heap:
        d, v = heapq.heappop(dist_heap)
        if d != new_depth.get(v):
            continue  # stale entry
        nd = d + 1
        for u in graph.neighbors(v):
            if u in members and new_depth.get(u, len(members) + 1) > nd:
                new_depth[u] = nd
                heapq.heappush(dist_heap, (nd, u))

    missing = members - set(new_depth)
    if missing and not partial:
        # Mirror the full builder exactly, message included.
        raise TreeError(
            f"topology is not connected; unreachable nodes: {sorted(missing)}"
        )

    # -- Phase 3: canonical parent reassignment with key cascade ------------
    new_parent: Dict[NodeId, Optional[NodeId]] = {root: None}
    keychanged: Set[NodeId] = set()
    keys: Dict[NodeId, Tuple[NodeId, ...]] = {root: (root,)}

    def pathkey(v: NodeId) -> Tuple[NodeId, ...]:
        # Walk up through reassigned parents where available, previous
        # parents otherwise (a node outside the repair set keeps its old
        # parent, which stays canonical), memoizing the whole chain.
        chain: List[NodeId] = []
        cur: Optional[NodeId] = v
        while cur is not None and cur not in keys:
            chain.append(cur)
            cur = (
                new_parent[cur] if cur in new_parent else previous.parent[cur]
            )
        key = keys[cur] if cur is not None else ()
        for node in reversed(chain):
            key = key + (node,)
            keys[node] = key
        return keys[v]

    dropped = (prev_members - set(new_depth)) | removed
    need: Dict[int, Set[NodeId]] = {}

    def enqueue(v: NodeId) -> None:
        d = new_depth.get(v)
        if d is not None and v != root:
            need.setdefault(d, set()).add(v)

    for v in sorted(new_depth):
        if old_depth.get(v) != new_depth[v]:
            enqueue(v)  # depth changed or newly reachable
            if v in prev_members:
                for child in previous.children(v):
                    enqueue(child)
    for v in sorted(dirty_members):
        enqueue(v)
    for v in sorted(dropped):
        if v in prev_members:
            for child in previous.children(v):
                enqueue(child)

    while need:
        d = min(need)
        bucket = need.pop(d)
        for v in sorted(bucket):
            best: Optional[NodeId] = None
            best_key: Optional[Tuple[NodeId, ...]] = None
            for u in topology.neighbors(v):
                if u in members and new_depth.get(u) == d - 1:
                    key = pathkey(u)
                    if best_key is None or key < best_key:
                        best, best_key = u, key
            if best is None:
                # Unreachable at this depth would have been caught above;
                # a reachable node always has a parent one level up.
                raise TreeError(f"node {v} has no parent candidate at depth {d}")
            new_parent[v] = best
            changed = (
                v not in prev_members
                or old_depth.get(v) != d
                or previous.parent.get(v) != best
                or best in keychanged
            )
            if changed:
                keychanged.add(v)
                keys[v] = pathkey(best) + (v,)
                for w in graph.neighbors(v):
                    if (
                        w in members
                        and new_depth.get(w) == d + 1
                        and w not in need.get(d + 1, ())
                    ):
                        enqueue(w)

    # Everyone not re-examined keeps its previous parent: its candidate set
    # and every candidate's pathkey are untouched by the delta, so the
    # canonical (minimum-key) choice cannot have moved.
    for v in sorted(new_depth):
        if v not in new_parent:
            new_parent[v] = previous.parent[v]
    return SpanningTree(root=root, parent=new_parent)


@dataclasses.dataclass(frozen=True)
class TreeBeacon:
    """Setup beacon flooded during distributed tree construction."""

    origin: NodeId
    hops: int


class TreeSetupProtocol:
    """Distributed spanning-tree setup by beacon flooding.

    The root broadcasts a :class:`TreeBeacon` with hop count 0; every node
    adopts the first sender offering the smallest hop count (ties broken by
    lowest sender id) as its parent and rebroadcasts with ``hops + 1``.  On
    an ideal channel this converges to the same tree as
    :func:`build_bfs_tree`; its purpose here is to let examples and tests
    demonstrate and *cost* the setup phase the paper only mentions in
    passing.

    The protocol is driven directly against a
    :class:`~repro.network.channel.WirelessChannel`.
    """

    MESSAGE_KIND = "tree_setup"

    def __init__(self, channel, root: NodeId = 0):
        self.channel = channel
        self.root = root
        self.best_hops: Dict[NodeId, int] = {root: 0}
        self.parent: Dict[NodeId, Optional[NodeId]] = {root: None}

    def run(self) -> SpanningTree:
        """Execute the setup flood and return the resulting tree."""
        for nid in self.channel.graph.nodes:
            if self.channel.is_alive(nid):
                self.channel.register(nid, self._make_receiver(nid))
        self.channel.broadcast(
            self.root, TreeBeacon(origin=self.root, hops=0), self.MESSAGE_KIND
        )
        self.channel.sim.run()
        alive = {n for n in self.channel.graph.nodes if self.channel.is_alive(n)}
        missing = alive - set(self.parent)
        if missing:
            raise TreeError(
                f"tree setup did not reach nodes {sorted(missing)}; "
                "topology may be disconnected"
            )
        return SpanningTree(root=self.root, parent=dict(self.parent))

    def _make_receiver(self, node_id: NodeId):
        def receive(sender: NodeId, frame) -> None:
            if not isinstance(frame, TreeBeacon):
                return
            hops = frame.hops + 1
            best = self.best_hops.get(node_id)
            current_parent = self.parent.get(node_id)
            better = best is None or hops < best or (
                hops == best and current_parent is not None and sender < current_parent
            )
            if node_id == self.root or not better:
                return
            first_adoption = best is None
            self.best_hops[node_id] = hops
            self.parent[node_id] = sender
            if first_adoption:
                self.channel.broadcast(
                    node_id, TreeBeacon(origin=node_id, hops=hops), self.MESSAGE_KIND
                )

        return receive
