"""LMAC-style TDMA MAC substrate with cross-layer notifications."""

from .crosslayer import (
    CrossLayerBus,
    CrossLayerEvent,
    NeighborFound,
    NeighborLost,
)
from .frames import MAC_CONTROL_KIND, ControlSection, MACFrame
from .lmac import LMACProtocol
from .schedule import DEFAULT_SLOTS_PER_FRAME, SlotSchedule

__all__ = [
    "CrossLayerBus",
    "CrossLayerEvent",
    "NeighborFound",
    "NeighborLost",
    "MAC_CONTROL_KIND",
    "ControlSection",
    "MACFrame",
    "LMACProtocol",
    "DEFAULT_SLOTS_PER_FRAME",
    "SlotSchedule",
]
