"""LMAC: lightweight TDMA medium access control.

This is the reproduction of the MAC substrate DirQ was implemented on top of
(van Hoesel & Havinga, reference [2] of the paper): a schedule-based MAC in
which every node owns one transmit slot per frame, elected in a fully
distributed way so that no two nodes within two hops share a slot.

The properties DirQ relies on, and which this implementation provides, are:

* **Neighbour discovery.**  Control beacons transmitted in a node's own slot
  let its neighbours learn of its existence and of the slots occupied around
  it.
* **Collision-free slot ownership.**  A node elects a slot that is free
  within its two-hop occupancy view; collisions caused by simultaneous
  election are detected from later beacons and resolved by the higher-id
  node re-electing.
* **Death detection with cross-layer notification.**  When a neighbour's
  beacons stop arriving for ``death_threshold`` consecutive beacon periods,
  LMAC declares it dead and publishes :class:`~repro.mac.crosslayer.
  NeighborLost` on the node's cross-layer bus; new neighbours similarly
  produce :class:`~repro.mac.crosslayer.NeighborFound`.  DirQ subscribes to
  these events to prune / extend its Range Tables (paper §4.2).
* **Payload transport.**  The upper layer sends unicast or broadcast
  payloads through :meth:`LMACProtocol.send`; they are carried in the next
  owned slot (modelled as a small fixed latency) and delivered to the
  destination's upper-layer handler.

Timing model
------------
The paper's metrics are message counts, not latencies, so this
implementation does not simulate every slot of every frame (which would be
prohibitively slow for 20 000-epoch runs in pure Python).  Instead, beacons
are emitted every ``beacon_interval`` epochs and payload transmissions are
sent immediately with a sub-epoch MAC access delay.  Slot ownership,
two-hop-free election, collision resolution and death detection are all
faithfully modelled; only the idle slots in between are elided.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

import numpy as np

from ..network.addresses import BROADCAST, NodeId
from ..network.channel import WirelessChannel
from ..network.links import NeighborTable
from ..simulation.engine import Simulator
from ..simulation.process import SimProcess
from .crosslayer import CrossLayerBus, NeighborFound, NeighborLost
from .frames import MAC_CONTROL_KIND, ControlSection, MACFrame
from .schedule import DEFAULT_SLOTS_PER_FRAME, SlotSchedule

UpperLayerHandler = Callable[[NodeId, Any], None]
"""Upper-layer receive hook: ``(sender_id, payload) -> None``."""


class _BeaconTarget:
    """One receiver's slice of a cached fast-beacon delivery plan.

    Full rows (``_BeaconPlan.rows``) are validated steady-state LMAC
    receivers; charge-only rows (``_BeaconPlan.charge``) are targets with
    no registered receiver and use only ``target``/``rx_entry``.  All
    referenced objects are identity-stable in the steady state, so
    per-tick revalidation is identity and version checks only.
    """

    __slots__ = (
        "target",
        "callback",
        "steady_get",
        "token",
        "schedule",
        "version",
        "first_hop",
        "slot_of",
        "timers_get",
        "entry",
        "counters",
        "sequences",
        "rx_entry",
    )


class _BeaconPlan:
    """Cached fast-beacon delivery plan for one sender (see _try_fast_beacon).

    ``dead`` holds targets that were dead at build time (free while dead;
    revival invalidates the plan), so ``targets`` -- and with it the
    per-beacon transmit cost -- is a plan constant.
    """

    __slots__ = (
        "graph",
        "degree",
        "slot",
        "occ",
        "rows",
        "charge",
        "dead",
        "targets",
        "tx_entry",
        "tx_cost",
        "rx_cost",
    )


class LMACProtocol(SimProcess):
    """LMAC instance running on one node.

    Parameters
    ----------
    sim:
        Simulation engine.
    channel:
        Shared wireless channel.
    node_id:
        Identifier of the node this MAC instance serves.
    rng:
        Random generator used for slot election tie-breaking.
    slots_per_frame:
        LMAC frame length.
    beacon_interval:
        Epochs between control beacons (the elided-frames coarsening knob).
    death_threshold:
        Consecutive missed beacons after which a neighbour is declared dead.
    crosslayer:
        Per-node cross-layer bus; a fresh one is created when omitted.
    """

    def __init__(
        self,
        sim: Simulator,
        channel: WirelessChannel,
        node_id: NodeId,
        rng: Optional[np.random.Generator] = None,
        slots_per_frame: int = DEFAULT_SLOTS_PER_FRAME,
        beacon_interval: float = 10.0,
        death_threshold: int = 3,
        crosslayer: Optional[CrossLayerBus] = None,
    ):
        super().__init__(sim, name=f"lmac[{node_id}]")
        self.channel = channel
        self.node_id = node_id
        # Fallback is seeded from the node id, so even unmanaged
        # construction (unit tests, notebooks) is deterministic.
        if rng is None:
            rng = np.random.default_rng(node_id)  # reprolint: disable=RL104
        self.rng = rng
        self.schedule = SlotSchedule(node_id, slots_per_frame)
        self.neighbors = NeighborTable(node_id)
        self.crosslayer = crosslayer if crosslayer is not None else CrossLayerBus()
        self.beacon_interval = float(beacon_interval)
        self.death_threshold = int(death_threshold)
        if self.beacon_interval <= 0:
            raise ValueError("beacon_interval must be positive")
        if self.death_threshold < 1:
            raise ValueError("death_threshold must be >= 1")
        self._upper_handler: Optional[UpperLayerHandler] = None
        self._sequence = 0
        # Plain int counters harvested into obs metrics at trial end --
        # unconditional increments cost less than any enabled-check here.
        self.beacons_sent = 0
        self.slot_conflicts = 0
        self.slot_elections = 0
        self._last_sequence_seen: dict[NodeId, int] = {}
        self._beacons_since_heard: dict[NodeId, int] = {}
        self._ctrl_cache: Optional[ControlSection] = None
        #: Opt-in steady-state beacon batching (columnar tick mode).  When
        #: enabled, a beacon tick whose every observable effect is provably
        #: the steady-state bookkeeping applies those effects directly --
        #: no frame object, no delivery event, no per-receiver dispatch.
        #: See _try_fast_beacon for the eligibility proof obligations.
        self.fast_beacons = False
        self._beacon_plan: Optional[_BeaconPlan] = None
        # High-water mark of _beacons_since_heard after the last fast sweep
        # (None = unknown).  Counters only *decrease* between our ticks
        # (receptions reset them), so a low mark proves no neighbour can
        # reach the death threshold this tick without scanning them all.
        self._bsh_max: Optional[int] = None
        # Steady-state reception cache: sender -> (slot, occupied-slots
        # frozenset *object*, schedule version, neighbour entry).  A frame
        # whose control section matches the cached slot / occupancy object
        # while the schedule version is unchanged can skip the whole
        # neighbour-bookkeeping path -- see _on_channel_receive.
        self._steady: dict[NodeId, tuple] = {}
        self._mac_access_delay = 1e-4
        # Per-kind transmit labels, built once: send() runs for every frame
        # of a 20 000-epoch trial, so the label f-string is hoisted out.
        self._tx_labels: dict[str, str] = {}
        # Bound liveness check, saving one attribute hop per reception.
        self._channel_is_alive = channel.is_alive
        channel.register(node_id, self._on_channel_receive)

    # -- wiring -----------------------------------------------------------------

    def set_upper_handler(self, handler: UpperLayerHandler) -> None:
        """Install the upper-layer (DirQ / flooding) receive hook."""
        self._upper_handler = handler

    @property
    def own_slot(self) -> Optional[int]:
        return self.schedule.own_slot

    # -- lifecycle ----------------------------------------------------------------

    def on_start(self) -> None:
        """Elect an initial slot and start the periodic beacon timer."""
        self._elect_slot()
        # Desynchronise the first beacon slightly per node so that start-up
        # beacons do not all land on the same simulated instant.
        offset = float(self.rng.uniform(0.0, self.beacon_interval * 0.1))
        self.set_timer("beacon", offset + self._mac_access_delay, self._beacon_tick)

    def shutdown(self) -> None:
        """Stop all MAC activity (used when the node dies)."""
        self.cancel_all_timers()

    def wake(self) -> None:
        """(Re)start beaconing, e.g. for a node added after deployment.

        Safe to call on an already-running instance: the beacon timer is
        simply re-armed.
        """
        self._elect_slot()
        self.set_timer("beacon", self._mac_access_delay, self._beacon_tick)

    # -- sending ---------------------------------------------------------------------

    def send(
        self,
        destination: NodeId,
        payload: Any,
        kind: str,
        payload_bytes: int = 32,
    ) -> None:
        """Transmit an upper-layer payload in this node's next owned slot.

        ``destination`` may be a one-hop neighbour id or
        :data:`~repro.network.addresses.BROADCAST`.
        """
        if not self.channel.is_alive(self.node_id):
            return
        frame = MACFrame(
            source=self.node_id,
            destination=destination,
            control=self._control_section(),
            payload=payload,
            payload_kind=kind,
            payload_bytes=payload_bytes,
        )

        def transmit() -> None:
            if not self.channel.is_alive(self.node_id):
                return
            if destination == BROADCAST:
                self.channel.broadcast(self.node_id, frame, kind, payload_bytes)
            else:
                self.channel.unicast(self.node_id, destination, frame, kind, payload_bytes)

        # Waiting for the owned slot is modelled as a small constant latency.
        label = self._tx_labels.get(kind)
        if label is None:
            label = self._tx_labels[kind] = f"{self.name}.tx[{kind}]"
        self.sim.schedule_after(self._mac_access_delay, transmit, label=label)

    def broadcast(self, payload: Any, kind: str, payload_bytes: int = 32) -> None:
        """Convenience wrapper for a one-hop broadcast."""
        self.send(BROADCAST, payload, kind, payload_bytes)

    # -- beaconing and neighbourhood maintenance ----------------------------------------

    def _beacon_tick(self) -> None:
        if not self.channel.is_alive(self.node_id):
            return
        if not (self.fast_beacons and self._try_fast_beacon()):
            self._bsh_max = None
            self._emit_beacon()
            self._check_dead_neighbors()
        self.set_timer("beacon", self.beacon_interval, self._beacon_tick)

    def _try_fast_beacon(self) -> bool:
        """Apply one beacon tick's steady-state effects without a frame.

        Returns ``True`` when the whole tick (beacon emission, delivery to
        every receiver, and the dead-neighbour sweep) was applied directly;
        ``False`` demands the reference path.  Eligibility is conservative:
        the direct application is used only when it is provably
        bit-identical to emitting a real frame, which requires

        * a lossless channel (loss draws consume the channel RNG stream in
          transmission order) and a disabled tracer (the direct path emits
          no ``channel.tx``/``channel.rx`` records);
        * the delivery instant ``now + propagation_delay`` falling in the
          same runner processing window as ``now`` (the runner reads the
          ledger at the epoch's 0.5 / 0.95 / boundary checkpoints, so a
          reception charge must not migrate across one);
        * no neighbour about to be declared dead this tick (death publishes
          a cross-layer event whose exact simulated time matters);
        * every alive receiver being a plain LMAC stack in the steady state
          for this sender (valid fast-path cache entry, first-hop ownership
          intact -- i.e. the delivery would take the reception fast path);
        * no receiver's own beacon timer firing inside the propagation
          window (its dead-neighbour sweep must order with this delivery
          exactly as the event queue would order them).

        Under those conditions every effect of the tick is private
        per-(receiver, sender) state or epoch-aggregated accounting, so
        applying it at tick time instead of delivery time is unobservable.

        The per-receiver eligibility data is cached in a *beacon plan*
        (see :class:`_BeaconTarget`): in the steady state every object the
        checks dereference -- the receiver's bound method, its cached
        steady tuple, its schedule dicts, its ledger entry -- is identity
        stable, so each tick only revalidates identities and version
        counters instead of rebuilding the delivery list.
        """
        channel = self.channel
        if channel.loss_probability > 0.0 or channel.tracer.enabled:
            return False
        schedule = self.schedule
        slot = schedule.own_slot
        if slot is None:
            return False
        now = self.sim.clock.now
        prop = channel.propagation_delay
        frac = now - int(now)
        rx_frac = frac + prop
        if (
            (frac < 0.5 and rx_frac >= 0.5)
            or (frac < 0.95 and rx_frac >= 0.95)
            or rx_frac >= 1.0
        ):
            return False
        threshold = self.death_threshold
        bsh = self._beacons_since_heard
        bsh_get = bsh.get
        neighbor_entries = self.neighbors._entries
        bsh_max = self._bsh_max
        if bsh_max is None or bsh_max + 2 > threshold:
            # After the last sweep every counter was <= bsh_max; since then
            # they can only have been reset (receptions) or created at zero
            # (new neighbours), so bsh_max + 2 <= threshold proves the
            # sweep below cannot push any counter to the death threshold.
            for n in neighbor_entries:
                if bsh_get(n, 0) + 1 >= threshold:
                    return False
        occ = schedule.occupied_first_hop_frozen()
        nid = self.node_id
        graph = channel.graph
        plan = self._beacon_plan
        if (
            plan is None
            or plan.graph is not graph
            or plan.slot != slot
            or plan.occ is not occ
            or plan.degree != len(graph._adj[nid])
        ):
            plan = self._build_beacon_plan(graph, slot, occ)
            if plan is None:
                return False
        alive_get = channel._alive.get
        receivers_get = channel._receivers.get
        rx_deadline = now + prop
        # Any liveness or registration change among the planned targets
        # invalidates the plan (rare); in exchange the steady-state passes
        # below never re-derive the target count or re-check row kinds.
        for t in plan.dead:
            if alive_get(t):
                self._beacon_plan = None
                return False
        for row in plan.charge:
            t = row.target
            if not alive_get(t) or receivers_get(t) is not None:
                self._beacon_plan = None
                return False
        rows = plan.rows
        flips = None
        for row in rows:
            t = row.target
            if (
                not alive_get(t)
                or receivers_get(t) is not row.callback
                or row.steady_get(nid) is not row.token
                or row.schedule.version != row.version
            ):
                self._beacon_plan = None
                return False
            first_hop = row.first_hop
            current = first_hop.get(slot)
            if current != nid:
                # Two mutually-hidden neighbours sharing this slot alternate
                # ownership of the receiver's first-hop entry on every
                # beacon.  A pure owner flip (same recorded slot, entry
                # currently held by the other sharer) is exactly what
                # record_neighbor_slot would apply -- no frozen-view or
                # version invalidation -- so it is replayed on commit.
                if current is None or row.slot_of.get(nid) != slot:
                    self._beacon_plan = None
                    return False
                if flips is None:
                    flips = [first_hop]
                else:
                    flips.append(first_hop)
            handle = row.timers_get("beacon")
            if handle is not None:
                event = handle._event
                if not event.cancelled and event.time <= rx_deadline:
                    # Transient hazard: the plan itself is still valid.
                    return False

        # Eligible: commit the tick.  Sender-side effects happen at `now`,
        # exactly when _emit_beacon would apply them.
        if flips is not None:
            for first_hop in flips:
                first_hop[slot] = nid
        sequence = self._sequence + 1
        self._sequence = sequence
        self.beacons_sent += 1
        stats = channel.stats
        stats.broadcasts += 1
        if channel.metrics.enabled:
            channel.metrics.observe("channel.fanout", plan.targets)
        tx_entry = plan.tx_entry
        tx_entry.count += 1
        tx_entry.cost += plan.tx_cost
        rx_cost = plan.rx_cost
        rx_time = rx_deadline
        for row in plan.charge:
            rx_entry = row.rx_entry
            rx_entry.count += 1
            rx_entry.cost += rx_cost
        for row in rows:
            rx_entry = row.rx_entry
            rx_entry.count += 1
            rx_entry.cost += rx_cost
            entry = row.entry
            if rx_time > entry.last_heard:
                entry.last_heard = rx_time
            row.counters[nid] = 0
            row.sequences[nid] = sequence
        stats.deliveries += len(rows)
        # Dead-neighbour sweep: no counter reaches the threshold (checked
        # above), so the increment is the sweep's only effect.
        bsh_max = 0
        for n in neighbor_entries:
            v = bsh_get(n, 0) + 1
            bsh[n] = v
            if v > bsh_max:
                bsh_max = v
        self._bsh_max = bsh_max
        return True

    def _build_beacon_plan(self, graph, slot: int, occ) -> Optional["_BeaconPlan"]:
        """Validate every current receiver and snapshot the delivery plan.

        Returns ``None`` when some alive receiver is not in the steady
        state for this sender (so the reference path must run).  Dead
        graph neighbours get a sentinel entry: they cost nothing while
        dead, and their revival invalidates the plan so the rebuilt one
        can validate their fresh state.
        """
        channel = self.channel
        nid = self.node_id
        alive = channel._alive
        receivers = channel._receivers
        ledger = channel.ledger
        rx_key = ("rx", MAC_CONTROL_KIND)
        lmac_receive = LMACProtocol._on_channel_receive
        rows = []
        charge = []
        dead = []
        adjacency = graph._adj[nid]
        for t in adjacency:
            if not alive.get(t):
                # No ledger access: the reference path never charges a dead
                # target, so materialising its (zero) rx entry here would
                # perturb the per-kind energy breakdown.
                dead.append(t)
                continue
            row = _BeaconTarget()
            row.target = t
            row.rx_entry = ledger.node(t)._entries[rx_key]
            receiver = receivers.get(t)
            if receiver is None:
                charge.append(row)
                continue
            if getattr(receiver, "__func__", None) is not lmac_receive:
                return None
            mac = receiver.__self__
            cached = mac._steady.get(nid)
            sched = mac.schedule
            if (
                cached is None
                or cached[2] != sched.version
                or cached[1] is not occ
                or cached[0] != slot
            ):
                return None
            owner = sched._first_hop.get(slot)
            if owner != nid and (
                owner is None or sched._slot_of.get(nid) != slot
            ):
                return None
            row.callback = receiver
            row.steady_get = mac._steady.get
            row.token = cached
            row.schedule = sched
            row.version = sched.version
            row.first_hop = sched._first_hop
            row.slot_of = sched._slot_of
            row.timers_get = mac._timers.get
            row.entry = cached[3]
            row.counters = mac._beacons_since_heard
            row.sequences = mac._last_sequence_seen
            rows.append(row)
        plan = _BeaconPlan()
        plan.graph = graph
        plan.degree = len(adjacency)
        plan.slot = slot
        plan.occ = occ
        plan.rows = rows
        plan.charge = charge
        plan.dead = dead
        plan.targets = len(rows) + len(charge)
        plan.tx_entry = ledger.node(nid)._entries[("tx", MAC_CONTROL_KIND)]
        plan.tx_cost = channel.energy_model.transmit_cost(8, plan.targets)
        plan.rx_cost = channel.energy_model.receive_cost(8)
        self._beacon_plan = plan
        return plan

    def _emit_beacon(self) -> None:
        self._sequence += 1
        self.beacons_sent += 1
        frame = MACFrame(
            source=self.node_id,
            destination=BROADCAST,
            control=self._control_section(),
            payload=None,
            payload_kind=MAC_CONTROL_KIND,
            payload_bytes=8,
        )
        self.channel.broadcast(self.node_id, frame, MAC_CONTROL_KIND, 8)

    def _control_section(self) -> ControlSection:
        # ControlSection is immutable, so the same object is reused until
        # the slot, the occupancy view, or the beacon sequence changes.
        # Reuse also keeps the occupied-slots frozenset identity stable
        # across frames, which is what receivers' steady-state fast path
        # keys on.
        slot = self.schedule.own_slot
        occupied = self.schedule.occupied_first_hop_frozen()
        cached = self._ctrl_cache
        if (
            cached is not None
            and cached.slot == slot
            and cached.occupied_slots is occupied
            and cached.sequence == self._sequence
        ):
            return cached
        cached = ControlSection(
            slot=slot, occupied_slots=occupied, sequence=self._sequence
        )
        self._ctrl_cache = cached
        return cached

    def _check_dead_neighbors(self) -> None:
        """Increment missed-beacon counters and declare silent neighbours dead."""
        for neighbor in list(self.neighbors.neighbor_ids):
            missed = self._beacons_since_heard.get(neighbor, 0) + 1
            self._beacons_since_heard[neighbor] = missed
            if missed >= self.death_threshold:
                self._declare_dead(neighbor, missed)

    def _declare_dead(self, neighbor: NodeId, missed: int) -> None:
        self.neighbors.remove(neighbor)
        self.schedule.forget_neighbor(neighbor)
        self._beacons_since_heard.pop(neighbor, None)
        self._last_sequence_seen.pop(neighbor, None)
        self.sim.tracer.record(
            self.now, "lmac.neighbor_lost", self.node_id, neighbor=neighbor
        )
        self.crosslayer.publish(
            NeighborLost(
                node_id=self.node_id,
                neighbor_id=neighbor,
                time=self.now,
                missed_beacons=missed,
            )
        )

    # -- receiving -------------------------------------------------------------------------

    def _on_channel_receive(self, sender: NodeId, frame: Any) -> None:
        if not isinstance(frame, MACFrame):
            # Foreign traffic (e.g. the tree-setup protocol driving the
            # channel directly) is ignored by the MAC layer.
            return
        # No liveness re-check here: the channel's delivery loop verifies the
        # receiver is alive immediately before invoking this hook, and the
        # alive map cannot change within one delivery event (death happens
        # via runner epochs / scripted events, never inside a receiver).
        node_id = self.node_id
        control = frame.control
        cached = self._steady.get(sender)
        schedule = self.schedule
        slot = control.slot
        if (
            cached is not None
            and cached[2] == schedule.version
            and cached[1] is control.occupied_slots
            and cached[0] == slot
            and (slot is None or schedule._first_hop.get(slot) == sender)
        ):
            # Steady state: the sender re-announces the same slot and the
            # identical (cached, see occupied_first_hop_frozen) occupancy
            # set, nothing changed our own slot or neighbourhood since the
            # full path last ran for this sender, and the sender still owns
            # its first-hop map entry (two mutually-hidden neighbours can
            # share a slot and alternate that entry; each flip must run the
            # full path so the map history matches the brute sequence).
            # Every step of _observe_neighbor is then provably a no-op
            # except the three writes below.
            now = self.sim.clock.now
            entry = cached[3]
            if now > entry.last_heard:
                entry.last_heard = now
            self._beacons_since_heard[sender] = 0
            self._last_sequence_seen[sender] = control.sequence
        else:
            self._observe_neighbor(sender, control)
        if frame.payload is not None:
            destination = frame.destination
            if destination == node_id or destination == BROADCAST:
                if self._upper_handler is not None:
                    self._upper_handler(sender, frame.payload)

    def _observe_neighbor(self, sender: NodeId, control: ControlSection) -> None:
        now = self.sim.clock.now
        neighbors = self.neighbors
        is_new = sender not in neighbors
        entry = neighbors.observe(sender, now, slot=control.slot)
        self._beacons_since_heard[sender] = 0
        self._last_sequence_seen[sender] = control.sequence
        self.schedule.record_neighbor_slot(sender, control.slot)
        self.schedule.record_reported_occupancy(control.occupied_slots)
        if is_new:
            self.sim.tracer.record(
                now, "lmac.neighbor_found", self.node_id, neighbor=sender
            )
            self.crosslayer.publish(
                NeighborFound(
                    node_id=self.node_id,
                    neighbor_id=sender,
                    time=self.now,
                    slot=control.slot,
                )
            )
        self._resolve_slot_conflict(sender, control)
        schedule = self.schedule
        if control.slot != schedule.own_slot:
            # Cache this observation for the steady-state fast path.  A
            # control section claiming our own slot is never cached: the
            # conflict may have been left standing (lower id wins), and a
            # saturated re-election could even pick the same slot again --
            # both must re-run _resolve_slot_conflict on the next frame.
            self._steady[sender] = (
                control.slot,
                control.occupied_slots,
                schedule.version,
                entry,
            )
        else:
            self._steady.pop(sender, None)

    def _resolve_slot_conflict(self, sender: NodeId, control: ControlSection) -> None:
        """Re-elect if a neighbour claims our slot (lower id wins)."""
        if self.schedule.own_slot is None:
            self._elect_slot()
            return
        if control.slot == self.schedule.own_slot and sender != self.node_id:
            if self.node_id > sender:
                self.slot_conflicts += 1
                self.sim.tracer.record(
                    self.now,
                    "lmac.slot_conflict",
                    self.node_id,
                    slot=self.schedule.own_slot,
                    winner=sender,
                )
                self.schedule.release()
                self._elect_slot()

    def _elect_slot(self) -> None:
        """Claim a slot believed free within two hops (random among free)."""
        free = self.schedule.free_slots()
        if not free:
            # Saturated neighbourhood: fall back to a uniformly random slot;
            # conflicts will be resolved by the lower-id-wins rule.
            free = list(range(self.schedule.slots_per_frame))
        choice = int(free[int(self.rng.integers(0, len(free)))])
        self.slot_elections += 1
        self.schedule.claim(choice)
        self.sim.tracer.record(
            self.now, "lmac.slot_elected", self.node_id, slot=choice
        )
