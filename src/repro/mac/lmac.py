"""LMAC: lightweight TDMA medium access control.

This is the reproduction of the MAC substrate DirQ was implemented on top of
(van Hoesel & Havinga, reference [2] of the paper): a schedule-based MAC in
which every node owns one transmit slot per frame, elected in a fully
distributed way so that no two nodes within two hops share a slot.

The properties DirQ relies on, and which this implementation provides, are:

* **Neighbour discovery.**  Control beacons transmitted in a node's own slot
  let its neighbours learn of its existence and of the slots occupied around
  it.
* **Collision-free slot ownership.**  A node elects a slot that is free
  within its two-hop occupancy view; collisions caused by simultaneous
  election are detected from later beacons and resolved by the higher-id
  node re-electing.
* **Death detection with cross-layer notification.**  When a neighbour's
  beacons stop arriving for ``death_threshold`` consecutive beacon periods,
  LMAC declares it dead and publishes :class:`~repro.mac.crosslayer.
  NeighborLost` on the node's cross-layer bus; new neighbours similarly
  produce :class:`~repro.mac.crosslayer.NeighborFound`.  DirQ subscribes to
  these events to prune / extend its Range Tables (paper §4.2).
* **Payload transport.**  The upper layer sends unicast or broadcast
  payloads through :meth:`LMACProtocol.send`; they are carried in the next
  owned slot (modelled as a small fixed latency) and delivered to the
  destination's upper-layer handler.

Timing model
------------
The paper's metrics are message counts, not latencies, so this
implementation does not simulate every slot of every frame (which would be
prohibitively slow for 20 000-epoch runs in pure Python).  Instead, beacons
are emitted every ``beacon_interval`` epochs and payload transmissions are
sent immediately with a sub-epoch MAC access delay.  Slot ownership,
two-hop-free election, collision resolution and death detection are all
faithfully modelled; only the idle slots in between are elided.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

import numpy as np

from ..network.addresses import BROADCAST, NodeId
from ..network.channel import WirelessChannel
from ..network.links import NeighborTable
from ..simulation.engine import Simulator
from ..simulation.process import SimProcess
from .crosslayer import CrossLayerBus, NeighborFound, NeighborLost
from .frames import MAC_CONTROL_KIND, ControlSection, MACFrame
from .schedule import DEFAULT_SLOTS_PER_FRAME, SlotSchedule

UpperLayerHandler = Callable[[NodeId, Any], None]
"""Upper-layer receive hook: ``(sender_id, payload) -> None``."""


class LMACProtocol(SimProcess):
    """LMAC instance running on one node.

    Parameters
    ----------
    sim:
        Simulation engine.
    channel:
        Shared wireless channel.
    node_id:
        Identifier of the node this MAC instance serves.
    rng:
        Random generator used for slot election tie-breaking.
    slots_per_frame:
        LMAC frame length.
    beacon_interval:
        Epochs between control beacons (the elided-frames coarsening knob).
    death_threshold:
        Consecutive missed beacons after which a neighbour is declared dead.
    crosslayer:
        Per-node cross-layer bus; a fresh one is created when omitted.
    """

    def __init__(
        self,
        sim: Simulator,
        channel: WirelessChannel,
        node_id: NodeId,
        rng: Optional[np.random.Generator] = None,
        slots_per_frame: int = DEFAULT_SLOTS_PER_FRAME,
        beacon_interval: float = 10.0,
        death_threshold: int = 3,
        crosslayer: Optional[CrossLayerBus] = None,
    ):
        super().__init__(sim, name=f"lmac[{node_id}]")
        self.channel = channel
        self.node_id = node_id
        # Fallback is seeded from the node id, so even unmanaged
        # construction (unit tests, notebooks) is deterministic.
        if rng is None:
            rng = np.random.default_rng(node_id)  # reprolint: disable=RL104
        self.rng = rng
        self.schedule = SlotSchedule(node_id, slots_per_frame)
        self.neighbors = NeighborTable(node_id)
        self.crosslayer = crosslayer if crosslayer is not None else CrossLayerBus()
        self.beacon_interval = float(beacon_interval)
        self.death_threshold = int(death_threshold)
        if self.beacon_interval <= 0:
            raise ValueError("beacon_interval must be positive")
        if self.death_threshold < 1:
            raise ValueError("death_threshold must be >= 1")
        self._upper_handler: Optional[UpperLayerHandler] = None
        self._sequence = 0
        # Plain int counters harvested into obs metrics at trial end --
        # unconditional increments cost less than any enabled-check here.
        self.beacons_sent = 0
        self.slot_conflicts = 0
        self.slot_elections = 0
        self._last_sequence_seen: dict[NodeId, int] = {}
        self._beacons_since_heard: dict[NodeId, int] = {}
        self._mac_access_delay = 1e-4
        # Per-kind transmit labels, built once: send() runs for every frame
        # of a 20 000-epoch trial, so the label f-string is hoisted out.
        self._tx_labels: dict[str, str] = {}
        # Bound liveness check, saving one attribute hop per reception.
        self._channel_is_alive = channel.is_alive
        channel.register(node_id, self._on_channel_receive)

    # -- wiring -----------------------------------------------------------------

    def set_upper_handler(self, handler: UpperLayerHandler) -> None:
        """Install the upper-layer (DirQ / flooding) receive hook."""
        self._upper_handler = handler

    @property
    def own_slot(self) -> Optional[int]:
        return self.schedule.own_slot

    # -- lifecycle ----------------------------------------------------------------

    def on_start(self) -> None:
        """Elect an initial slot and start the periodic beacon timer."""
        self._elect_slot()
        # Desynchronise the first beacon slightly per node so that start-up
        # beacons do not all land on the same simulated instant.
        offset = float(self.rng.uniform(0.0, self.beacon_interval * 0.1))
        self.set_timer("beacon", offset + self._mac_access_delay, self._beacon_tick)

    def shutdown(self) -> None:
        """Stop all MAC activity (used when the node dies)."""
        self.cancel_all_timers()

    def wake(self) -> None:
        """(Re)start beaconing, e.g. for a node added after deployment.

        Safe to call on an already-running instance: the beacon timer is
        simply re-armed.
        """
        self._elect_slot()
        self.set_timer("beacon", self._mac_access_delay, self._beacon_tick)

    # -- sending ---------------------------------------------------------------------

    def send(
        self,
        destination: NodeId,
        payload: Any,
        kind: str,
        payload_bytes: int = 32,
    ) -> None:
        """Transmit an upper-layer payload in this node's next owned slot.

        ``destination`` may be a one-hop neighbour id or
        :data:`~repro.network.addresses.BROADCAST`.
        """
        if not self.channel.is_alive(self.node_id):
            return
        frame = MACFrame(
            source=self.node_id,
            destination=destination,
            control=self._control_section(),
            payload=payload,
            payload_kind=kind,
            payload_bytes=payload_bytes,
        )

        def transmit() -> None:
            if not self.channel.is_alive(self.node_id):
                return
            if destination == BROADCAST:
                self.channel.broadcast(self.node_id, frame, kind, payload_bytes)
            else:
                self.channel.unicast(self.node_id, destination, frame, kind, payload_bytes)

        # Waiting for the owned slot is modelled as a small constant latency.
        label = self._tx_labels.get(kind)
        if label is None:
            label = self._tx_labels[kind] = f"{self.name}.tx[{kind}]"
        self.sim.schedule_after(self._mac_access_delay, transmit, label=label)

    def broadcast(self, payload: Any, kind: str, payload_bytes: int = 32) -> None:
        """Convenience wrapper for a one-hop broadcast."""
        self.send(BROADCAST, payload, kind, payload_bytes)

    # -- beaconing and neighbourhood maintenance ----------------------------------------

    def _beacon_tick(self) -> None:
        if not self.channel.is_alive(self.node_id):
            return
        self._emit_beacon()
        self._check_dead_neighbors()
        self.set_timer("beacon", self.beacon_interval, self._beacon_tick)

    def _emit_beacon(self) -> None:
        self._sequence += 1
        self.beacons_sent += 1
        frame = MACFrame(
            source=self.node_id,
            destination=BROADCAST,
            control=self._control_section(),
            payload=None,
            payload_kind=MAC_CONTROL_KIND,
            payload_bytes=8,
        )
        self.channel.broadcast(self.node_id, frame, MAC_CONTROL_KIND, 8)

    def _control_section(self) -> ControlSection:
        return ControlSection(
            slot=self.schedule.own_slot,
            occupied_slots=self.schedule.occupied_first_hop_frozen(),
            sequence=self._sequence,
        )

    def _check_dead_neighbors(self) -> None:
        """Increment missed-beacon counters and declare silent neighbours dead."""
        for neighbor in list(self.neighbors.neighbor_ids):
            missed = self._beacons_since_heard.get(neighbor, 0) + 1
            self._beacons_since_heard[neighbor] = missed
            if missed >= self.death_threshold:
                self._declare_dead(neighbor, missed)

    def _declare_dead(self, neighbor: NodeId, missed: int) -> None:
        self.neighbors.remove(neighbor)
        self.schedule.forget_neighbor(neighbor)
        self._beacons_since_heard.pop(neighbor, None)
        self._last_sequence_seen.pop(neighbor, None)
        self.sim.tracer.record(
            self.now, "lmac.neighbor_lost", self.node_id, neighbor=neighbor
        )
        self.crosslayer.publish(
            NeighborLost(
                node_id=self.node_id,
                neighbor_id=neighbor,
                time=self.now,
                missed_beacons=missed,
            )
        )

    # -- receiving -------------------------------------------------------------------------

    def _on_channel_receive(self, sender: NodeId, frame: Any) -> None:
        if not isinstance(frame, MACFrame):
            # Foreign traffic (e.g. the tree-setup protocol driving the
            # channel directly) is ignored by the MAC layer.
            return
        node_id = self.node_id
        if not self._channel_is_alive(node_id):
            return
        self._observe_neighbor(sender, frame.control)
        if frame.has_payload:
            destination = frame.destination
            if destination == node_id or destination == BROADCAST:
                if self._upper_handler is not None:
                    self._upper_handler(sender, frame.payload)

    def _observe_neighbor(self, sender: NodeId, control: ControlSection) -> None:
        now = self.sim.clock.now
        neighbors = self.neighbors
        is_new = sender not in neighbors
        neighbors.observe(sender, now, slot=control.slot)
        self._beacons_since_heard[sender] = 0
        self._last_sequence_seen[sender] = control.sequence
        self.schedule.record_neighbor_slot(sender, control.slot)
        self.schedule.record_reported_occupancy(control.occupied_slots)
        if is_new:
            self.sim.tracer.record(
                now, "lmac.neighbor_found", self.node_id, neighbor=sender
            )
            self.crosslayer.publish(
                NeighborFound(
                    node_id=self.node_id,
                    neighbor_id=sender,
                    time=self.now,
                    slot=control.slot,
                )
            )
        self._resolve_slot_conflict(sender, control)

    def _resolve_slot_conflict(self, sender: NodeId, control: ControlSection) -> None:
        """Re-elect if a neighbour claims our slot (lower id wins)."""
        if self.schedule.own_slot is None:
            self._elect_slot()
            return
        if control.slot == self.schedule.own_slot and sender != self.node_id:
            if self.node_id > sender:
                self.slot_conflicts += 1
                self.sim.tracer.record(
                    self.now,
                    "lmac.slot_conflict",
                    self.node_id,
                    slot=self.schedule.own_slot,
                    winner=sender,
                )
                self.schedule.release()
                self._elect_slot()

    def _elect_slot(self) -> None:
        """Claim a slot believed free within two hops (random among free)."""
        free = self.schedule.free_slots()
        if not free:
            # Saturated neighbourhood: fall back to a uniformly random slot;
            # conflicts will be resolved by the lower-id-wins rule.
            free = list(range(self.schedule.slots_per_frame))
        choice = int(free[int(self.rng.integers(0, len(free)))])
        self.slot_elections += 1
        self.schedule.claim(choice)
        self.sim.tracer.record(
            self.now, "lmac.slot_elected", self.node_id, slot=choice
        )
