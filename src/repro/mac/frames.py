"""MAC frame formats.

LMAC transmits one frame per owned time slot.  A frame carries a small
control section (the sender's slot number and its view of occupied slots,
which is how the distributed schedule self-organises) plus an optional data
payload handed down from the upper layer (DirQ / flooding messages).
"""

from __future__ import annotations

import dataclasses
from typing import Any, FrozenSet, Optional

from ..network.addresses import BROADCAST, NodeId

#: Ledger kind used for LMAC control traffic.  The paper's cost comparison
#: (§5, §7) counts only query/update traffic, because the MAC layer's own
#: overhead is identical whichever dissemination scheme runs on top of it;
#: metrics exclude this kind from protocol-cost aggregation.
MAC_CONTROL_KIND = "mac_control"


@dataclasses.dataclass(frozen=True, slots=True)
class ControlSection:
    """LMAC control section broadcast in a node's own slot.

    Attributes
    ----------
    slot:
        The slot number the sender owns (``None`` while still electing).
    occupied_slots:
        Slot numbers the sender believes are taken within its one-hop
        neighbourhood (including its own).  Receivers union this into their
        two-hop occupancy view, which is what makes the slot election
        collision-free within two hops.
    sequence:
        Monotonically increasing beacon counter, used by neighbours to
        detect missed beacons (death detection).
    """

    slot: Optional[int]
    occupied_slots: FrozenSet[int]
    sequence: int


@dataclasses.dataclass(frozen=True, slots=True)
class MACFrame:
    """One over-the-air LMAC frame.

    Attributes
    ----------
    source:
        Transmitting node.
    destination:
        Target node id, or :data:`~repro.network.addresses.BROADCAST`.
    control:
        LMAC control section (always present; pure data frames piggyback the
        latest control state, just as in the real protocol).
    payload:
        Upper-layer message, or ``None`` for a control-only beacon.
    payload_kind:
        Ledger kind for the payload (e.g. ``"query"``, ``"update"``); the
        control-only kind is :data:`MAC_CONTROL_KIND`.
    payload_bytes:
        Approximate payload size used by byte-proportional energy models.
    """

    source: NodeId
    destination: NodeId
    control: ControlSection
    payload: Any = None
    payload_kind: str = MAC_CONTROL_KIND
    payload_bytes: int = 16

    @property
    def is_broadcast(self) -> bool:
        return self.destination == BROADCAST

    @property
    def has_payload(self) -> bool:
        return self.payload is not None
