"""TDMA frame / slot schedule bookkeeping.

LMAC divides time into fixed-length *frames*, each consisting of
``slots_per_frame`` slots; every node owns exactly one slot in which it may
transmit, and the ownership pattern is collision-free within two hops.  This
module holds the local schedule state one node maintains: its own slot, the
slots it has heard being used by one-hop neighbours, and the two-hop
occupancy learned from neighbours' control sections.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Optional, Set

from ..network.addresses import NodeId

DEFAULT_SLOTS_PER_FRAME = 32
"""LMAC's default frame length (32 slots, as in van Hoesel & Havinga)."""


class SlotSchedule:
    """One node's local view of the TDMA schedule.

    Parameters
    ----------
    owner:
        The node this schedule belongs to.
    slots_per_frame:
        Number of slots in one LMAC frame.
    """

    def __init__(self, owner: NodeId, slots_per_frame: int = DEFAULT_SLOTS_PER_FRAME):
        if slots_per_frame < 1:
            raise ValueError("slots_per_frame must be >= 1")
        self.owner = owner
        self.slots_per_frame = int(slots_per_frame)
        self.own_slot: Optional[int] = None
        # slot -> owning one-hop neighbour
        self._first_hop: Dict[int, NodeId] = {}
        # neighbour -> slot (reverse index of _first_hop, maintained so the
        # per-beacon bookkeeping does not scan the whole slot map)
        self._slot_of: Dict[NodeId, int] = {}
        # slots reported occupied by neighbours (their one-hop view = our two-hop)
        self._second_hop: Set[int] = set()
        # cached frozenset for the per-frame control section (see
        # occupied_first_hop_frozen); invalidated on any first-hop change
        self._first_hop_frozen: Optional[FrozenSet[int]] = None
        #: Bumped on every own-slot change and neighbour forget.  The MAC's
        #: steady-state reception fast path caches per-sender observations
        #: against this counter: any such change forces the next frame from
        #: every neighbour through the full bookkeeping path.  Deliberately
        #: *not* bumped by two-hop occupancy growth (a merged report stays
        #: merged until :meth:`forget_neighbor`) nor by first-hop slot
        #: recording (the fast path checks first-hop ownership directly).
        self.version = 0

    # -- mutation ---------------------------------------------------------------

    def claim(self, slot: int) -> None:
        """Claim ``slot`` as this node's own transmit slot."""
        self._check_slot(slot)
        self.own_slot = slot
        self._first_hop_frozen = None
        self.version += 1

    def release(self) -> None:
        """Give up the currently owned slot (used on collision detection)."""
        self.own_slot = None
        self._first_hop_frozen = None
        self.version += 1

    def record_neighbor_slot(self, neighbor: NodeId, slot: Optional[int]) -> None:
        """Record that a one-hop neighbour owns ``slot``."""
        if slot is None:
            return
        previous = self._slot_of.get(neighbor)
        if previous == slot and self._first_hop.get(slot) == neighbor:
            # Steady state: the neighbour re-announces its known slot in
            # every beacon, so this is the per-beacon hot path.
            return
        self._check_slot(slot)
        # Drop the stale claim this neighbour previously had (at most one:
        # the reverse index guarantees one recorded slot per neighbour).
        if previous is not None and previous != slot:
            if self._first_hop.get(previous) == neighbor:
                del self._first_hop[previous]
        displaced = self._first_hop.get(slot)
        self._first_hop[slot] = neighbor
        self._slot_of[neighbor] = slot
        if previous == slot and displaced is not None:
            # Pure owner flip: two mutually-out-of-range neighbours can
            # legitimately share a slot and alternate ownership of this map
            # entry on every beacon.  The occupied *key set* is unchanged,
            # so neither the frozen control-section view nor the fast-path
            # version needs invalidating (the reception fast path checks
            # first-hop ownership explicitly, see LMACProtocol).
            return
        self._first_hop_frozen = None

    def record_reported_occupancy(self, occupied: FrozenSet[int] | Set[int]) -> None:
        """Merge a neighbour's reported occupied-slot set (two-hop knowledge)."""
        second_hop = self._second_hop
        if occupied <= second_hop:
            # Per-beacon hot path: an unchanged neighbourhood reports the
            # same occupancy every beacon interval.
            return
        for slot in occupied:
            self._check_slot(slot)
        second_hop |= occupied

    def forget_neighbor(self, neighbor: NodeId) -> None:
        """Remove all first-hop claims held by a (dead) neighbour.

        Two-hop occupancy is rebuilt over time from fresh control sections;
        we clear it conservatively so freed slots become reusable.
        """
        slot = self._slot_of.pop(neighbor, None)
        if slot is not None and self._first_hop.get(slot) == neighbor:
            del self._first_hop[slot]
        self._second_hop = set()
        self._first_hop_frozen = None
        self.version += 1

    # -- queries -----------------------------------------------------------------

    def slot_owner(self, slot: int) -> Optional[NodeId]:
        """One-hop neighbour known to own ``slot`` (or ``None``)."""
        return self._first_hop.get(slot)

    def occupied_first_hop(self) -> Set[int]:
        """Slots owned by this node or a one-hop neighbour."""
        occupied = set(self._first_hop)
        if self.own_slot is not None:
            occupied.add(self.own_slot)
        return occupied

    def occupied_first_hop_frozen(self) -> FrozenSet[int]:
        """Cached frozen view of :meth:`occupied_first_hop`.

        Every transmitted frame embeds this set in its control section, so
        it is rebuilt only when the first-hop schedule actually changes.
        """
        cached = self._first_hop_frozen
        if cached is None:
            cached = self._first_hop_frozen = frozenset(self.occupied_first_hop())
        return cached

    def occupied_anywhere(self) -> Set[int]:
        """Slots occupied within this node's two-hop knowledge."""
        return self.occupied_first_hop() | set(self._second_hop)

    def free_slots(self) -> list[int]:
        """Slots believed free within two hops, sorted ascending."""
        return sorted(set(range(self.slots_per_frame)) - self.occupied_anywhere())

    def conflicts_with_neighbor(self) -> Optional[NodeId]:
        """Neighbour that claims the same slot as this node, if any."""
        if self.own_slot is None:
            return None
        return self._first_hop.get(self.own_slot)

    def occupancy_stats(self) -> Dict[str, int]:
        """Slot-occupancy summary for end-of-trial metrics harvesting.

        Counts, not references: the dict is a snapshot, safe to aggregate
        across nodes without aliasing schedule internals.
        """
        first_hop = len(self.occupied_first_hop())
        anywhere = len(self.occupied_anywhere())
        return {
            "first_hop": first_hop,
            "two_hop": anywhere,
            "free": self.slots_per_frame - anywhere,
        }

    def _check_slot(self, slot: int) -> None:
        if not (0 <= slot < self.slots_per_frame):
            raise ValueError(
                f"slot {slot} outside frame of {self.slots_per_frame} slots"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SlotSchedule(owner={self.owner}, own_slot={self.own_slot}, "
            f"first_hop={self._first_hop})"
        )
