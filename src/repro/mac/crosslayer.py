"""Cross-layer notification bus between the MAC layer and DirQ.

DirQ's topology adaptation relies on information that only the MAC layer
has: LMAC notices that a neighbouring node has died (its slot goes silent)
or that a new node has joined (a new slot becomes occupied), and notifies
the dissemination layer, which then updates its Range Tables and propagates
any changes up the tree (paper §4.2).

The bus is a tiny synchronous publish/subscribe mechanism: the MAC layer
publishes :class:`NeighborLost` / :class:`NeighborFound` events, and any
interested upper-layer protocol subscribes a callback.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, List

from ..network.addresses import NodeId


@dataclasses.dataclass(frozen=True)
class CrossLayerEvent:
    """Base class for cross-layer notifications."""

    node_id: NodeId
    """The node *receiving* the notification (the local node)."""

    neighbor_id: NodeId
    """The neighbour the notification is about."""

    time: float
    """Simulated time at which the MAC layer made the determination."""


@dataclasses.dataclass(frozen=True)
class NeighborLost(CrossLayerEvent):
    """LMAC has concluded that ``neighbor_id`` is dead or out of range."""

    missed_beacons: int = 0


@dataclasses.dataclass(frozen=True)
class NeighborFound(CrossLayerEvent):
    """LMAC has detected a new neighbour ``neighbor_id``."""

    slot: int | None = None


CrossLayerCallback = Callable[[CrossLayerEvent], None]


class CrossLayerBus:
    """Synchronous pub/sub channel for cross-layer events on one node."""

    def __init__(self) -> None:
        self._subscribers: List[CrossLayerCallback] = []
        self._history: List[CrossLayerEvent] = []

    def subscribe(self, callback: CrossLayerCallback) -> None:
        """Register a callback invoked for every published event."""
        if callback in self._subscribers:
            return
        self._subscribers.append(callback)

    def unsubscribe(self, callback: CrossLayerCallback) -> bool:
        try:
            self._subscribers.remove(callback)
            return True
        except ValueError:
            return False

    def publish(self, event: CrossLayerEvent) -> None:
        """Deliver ``event`` to every subscriber, in subscription order."""
        self._history.append(event)
        for callback in list(self._subscribers):
            callback(event)

    @property
    def history(self) -> List[CrossLayerEvent]:
        """All events ever published on this bus (oldest first)."""
        return list(self._history)

    def events_of(self, event_type: type) -> List[CrossLayerEvent]:
        """Published events of a particular type."""
        return [e for e in self._history if isinstance(e, event_type)]
