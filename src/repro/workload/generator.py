"""Range-query workload generation.

The paper's simulations inject "random queries which covered 20%, 40% and
60% of the nodes ... every 20 epochs" (§7).  Coverage there means the
fraction of nodes *involved* in answering the query -- the sources plus the
intermediate forwarders on the communication tree -- which depends on both
the queried value interval and where the matching nodes happen to sit in the
tree.

:class:`QueryWorkloadGenerator` therefore calibrates each query against the
ground truth: it picks a random centre value from the current readings of
the queried sensor type and then searches for the interval half-width whose
involvement fraction is closest to the requested coverage.  The search is a
bisection over the half-width (involvement is monotone non-decreasing in the
half-width), so generation is deterministic given the RNG stream and cheap
enough to run every 20 epochs for 20 000-epoch experiments.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Set

import numpy as np

from ..core.messages import RangeQuery
from ..network.addresses import NodeId
from ..network.spanning_tree import SpanningTree
from ..sensors.dataset import SensorDataset
from .ground_truth import involvement_fraction


@dataclasses.dataclass(frozen=True)
class GeneratedQuery:
    """A calibrated query plus the ground truth known at generation time."""

    query: RangeQuery
    target_coverage: float
    achieved_coverage: float


class QueryWorkloadGenerator:
    """Generates one-shot range queries with a target node involvement.

    Parameters
    ----------
    dataset:
        Ground-truth readings used for calibration.
    tree:
        Communication tree used to count forwarding nodes.
    rng:
        Random stream (centre-value selection and sensor-type choice).
    sensor_types:
        Types to draw queries over; defaults to every type in the dataset.
    sensor_owners:
        Mapping sensor type -> nodes that carry it (heterogeneous networks).
    max_bisection_steps:
        Iterations of the half-width bisection; 20 gives sub-0.1 % width
        resolution over the full value range.
    """

    def __init__(
        self,
        dataset: SensorDataset,
        tree: SpanningTree,
        rng: np.random.Generator,
        sensor_types: Optional[Sequence[str]] = None,
        sensor_owners: Optional[Dict[str, Set[NodeId]]] = None,
        max_bisection_steps: int = 20,
    ):
        self.dataset = dataset
        self.tree = tree
        self.rng = rng
        self.sensor_types = (
            list(sensor_types) if sensor_types is not None else dataset.sensor_types
        )
        unknown = [t for t in self.sensor_types if not dataset.has_type(t)]
        if unknown:
            raise KeyError(f"dataset lacks sensor types {unknown}")
        self.sensor_owners = sensor_owners
        self.max_bisection_steps = int(max_bisection_steps)
        self._next_query_id = 0
        self.alive: Optional[Set[NodeId]] = None

    # -- configuration hooks ----------------------------------------------------

    def set_tree(self, tree: SpanningTree) -> None:
        """Follow topology repairs so coverage stays calibrated."""
        self.tree = tree

    def set_alive(self, alive: Optional[Set[NodeId]]) -> None:
        """Restrict ground-truth sources to currently alive nodes."""
        self.alive = set(alive) if alive is not None else None

    # -- generation --------------------------------------------------------------

    def next_query_id(self) -> int:
        qid = self._next_query_id
        self._next_query_id += 1
        return qid

    def generate(
        self,
        epoch: int,
        target_coverage: float,
        sensor_type: Optional[str] = None,
    ) -> GeneratedQuery:
        """Generate one query whose involvement is close to ``target_coverage``.

        Parameters
        ----------
        epoch:
            Injection epoch (calibration uses the readings of this epoch).
        target_coverage:
            Desired fraction of non-root nodes involved (0, 1].
        sensor_type:
            Fix the queried type; a uniform random choice when omitted.
        """
        if not (0.0 < target_coverage <= 1.0):
            raise ValueError("target_coverage must be in (0, 1]")
        if sensor_type is None:
            sensor_type = self.sensor_types[
                int(self.rng.integers(0, len(self.sensor_types)))
            ]
        elif sensor_type not in self.sensor_types:
            raise KeyError(f"unknown sensor type {sensor_type!r}")

        values = self.dataset.epoch_slice(sensor_type, epoch)
        lo_all, hi_all = float(values.min()), float(values.max())
        span = max(hi_all - lo_all, 1e-9)

        # Centre the interval on the reading of a randomly chosen node so
        # queries land in populated regions of the value space.
        centre = float(values[int(self.rng.integers(0, len(values)))])

        def coverage_for(half_width: float) -> float:
            candidate = RangeQuery(
                query_id=-1,
                sensor_type=sensor_type,
                low=centre - half_width,
                high=centre + half_width,
                epoch=epoch,
            )
            return involvement_fraction(
                self.dataset,
                self.tree,
                candidate,
                epoch,
                self.sensor_owners,
                self.alive,
            )

        # Bisection over the half-width.  Involvement is monotone in the
        # half-width, from the coverage of the singleton interval up to the
        # coverage of the full value range.
        low_hw, high_hw = 0.0, span
        if coverage_for(high_hw) < target_coverage:
            best_hw = high_hw
        else:
            best_hw = high_hw
            for _ in range(self.max_bisection_steps):
                mid = (low_hw + high_hw) / 2.0
                if coverage_for(mid) >= target_coverage:
                    best_hw = mid
                    high_hw = mid
                else:
                    low_hw = mid

        achieved = coverage_for(best_hw)
        query = RangeQuery(
            query_id=self.next_query_id(),
            sensor_type=sensor_type,
            low=centre - best_hw,
            high=centre + best_hw,
            epoch=epoch,
        )
        return GeneratedQuery(
            query=query,
            target_coverage=float(target_coverage),
            achieved_coverage=float(achieved),
        )

    def generate_batch(
        self,
        epochs: Sequence[int],
        target_coverage: float,
        sensor_type: Optional[str] = None,
    ) -> List[GeneratedQuery]:
        """Generate one calibrated query per injection epoch."""
        return [self.generate(e, target_coverage, sensor_type) for e in epochs]
