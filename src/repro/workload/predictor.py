"""Query-rate prediction at the root.

The paper assumes "the server connected to the root of the sensor network
... is capable of predicting the number of queries that will be posed to the
network in the next hour based on historical data", citing web-server access
prediction work [10].  This module provides that predictor: a smoothed
estimate over the realised per-hour query counts, with a simple trend term
so ramping workloads are anticipated rather than chased.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional


class QueryRatePredictor:
    """Predicts the number of queries expected in the next hour.

    Parameters
    ----------
    smoothing:
        Weight of the most recent hour in the exponential moving average.
    trend_weight:
        Fraction of the observed hour-over-hour trend added to the forecast
        (0 disables trend extrapolation).
    history:
        Number of recent per-hour counts retained for inspection.
    initial_estimate:
        Forecast returned before any hour has completed (e.g. the operator's
        guess at commissioning time).
    """

    def __init__(
        self,
        smoothing: float = 0.5,
        trend_weight: float = 0.3,
        history: int = 48,
        initial_estimate: float = 0.0,
    ):
        if not (0.0 < smoothing <= 1.0):
            raise ValueError("smoothing must be in (0, 1]")
        if not (0.0 <= trend_weight <= 1.0):
            raise ValueError("trend_weight must be in [0, 1]")
        if history < 2:
            raise ValueError("history must be >= 2")
        if initial_estimate < 0:
            raise ValueError("initial_estimate must be non-negative")
        self.smoothing = smoothing
        self.trend_weight = trend_weight
        self.initial_estimate = float(initial_estimate)
        self._level: Optional[float] = None
        self._trend = 0.0
        self._history: Deque[float] = deque(maxlen=history)
        self._queries_seen = 0

    # -- observation ---------------------------------------------------------

    def observe_query(self, epoch: int | None = None) -> None:
        """Count one injected query (optional; used for diagnostics only)."""
        self._queries_seen += 1

    def record(self, queries_in_hour: float) -> None:
        """Record the realised number of queries in the hour that just ended."""
        if queries_in_hour < 0:
            raise ValueError("queries_in_hour must be non-negative")
        value = float(queries_in_hour)
        self._history.append(value)
        if self._level is None:
            self._level = value
            self._trend = 0.0
            return
        previous_level = self._level
        self._level = (
            self.smoothing * value + (1.0 - self.smoothing) * self._level
        )
        self._trend = (
            self.smoothing * (self._level - previous_level)
            + (1.0 - self.smoothing) * self._trend
        )

    # -- forecast ---------------------------------------------------------------

    def predict(self) -> float:
        """Expected number of queries in the next hour (never negative)."""
        if self._level is None:
            return self.initial_estimate
        forecast = self._level + self.trend_weight * self._trend
        return max(0.0, forecast)

    # -- introspection -------------------------------------------------------------

    @property
    def history(self) -> list[float]:
        """Realised per-hour counts, oldest first."""
        return list(self._history)

    @property
    def total_queries_seen(self) -> int:
        return self._queries_seen

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"QueryRatePredictor(level={self._level}, trend={self._trend:.3f}, "
            f"prediction={self.predict():.2f})"
        )
