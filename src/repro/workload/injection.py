"""Query injection schedules.

The paper injects a query every 20 epochs (§7).  Experiments and examples
may also want bursty or Poisson arrivals (e.g. to exercise the EHr
predictor under non-stationary load), so several schedules are provided
behind one small interface: a schedule is simply an iterable of injection
epochs within ``[0, num_epochs)``.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence

import numpy as np


def periodic_schedule(
    num_epochs: int, period: int = 20, start: int = 20
) -> List[int]:
    """The paper's schedule: one query every ``period`` epochs.

    The default starts at epoch ``period`` (not 0) so the very first query
    is issued after the network has had one period to populate its range
    tables, mirroring a warm-up phase.
    """
    if num_epochs <= 0:
        raise ValueError("num_epochs must be positive")
    if period <= 0:
        raise ValueError("period must be positive")
    if start < 0:
        raise ValueError("start must be non-negative")
    return list(range(start, num_epochs, period))


def poisson_schedule(
    num_epochs: int, rate_per_epoch: float, rng: np.random.Generator
) -> List[int]:
    """Poisson arrivals with the given mean rate (multiple per epoch allowed)."""
    if num_epochs <= 0:
        raise ValueError("num_epochs must be positive")
    if rate_per_epoch < 0:
        raise ValueError("rate_per_epoch must be non-negative")
    counts = rng.poisson(rate_per_epoch, size=num_epochs)
    epochs: List[int] = []
    for epoch, count in enumerate(counts):
        epochs.extend([epoch] * int(count))
    return epochs


def diurnal_schedule(
    num_epochs: int,
    mean_rate_per_epoch: float,
    epochs_per_day: int,
    rng: np.random.Generator,
    peak_to_trough: float = 4.0,
) -> List[int]:
    """Non-stationary arrivals following a daily usage cycle.

    Models the paper's motivating scenario (researchers, students and the
    public querying a forest deployment): demand peaks during the day and
    drops at night, with ``peak_to_trough`` controlling the contrast.  Used
    to exercise the EHr predictor and the ATC's load adaptation.
    """
    if epochs_per_day <= 0:
        raise ValueError("epochs_per_day must be positive")
    if peak_to_trough < 1.0:
        raise ValueError("peak_to_trough must be >= 1.0")
    epochs = np.arange(num_epochs)
    modulation = 1.0 + (peak_to_trough - 1.0) / 2.0 * (
        1.0 + np.sin(2.0 * np.pi * epochs / epochs_per_day)
    )
    modulation /= modulation.mean()
    rates = mean_rate_per_epoch * modulation
    counts = rng.poisson(rates)
    out: List[int] = []
    for epoch, count in enumerate(counts):
        out.extend([epoch] * int(count))
    return out


def burst_schedule(
    num_epochs: int,
    burst_epochs: Sequence[int],
    queries_per_burst: int,
    background_period: int = 0,
) -> List[int]:
    """Bursts of queries at chosen epochs over an optional periodic background."""
    if queries_per_burst < 1:
        raise ValueError("queries_per_burst must be >= 1")
    out: List[int] = []
    if background_period > 0:
        out.extend(periodic_schedule(num_epochs, background_period))
    for epoch in burst_epochs:
        if not (0 <= epoch < num_epochs):
            raise ValueError(f"burst epoch {epoch} outside [0, {num_epochs})")
        out.extend([int(epoch)] * queries_per_burst)
    return sorted(out)


def queries_per_window(schedule: Sequence[int], window: int, num_epochs: int) -> List[int]:
    """Histogram of injections per ``window`` epochs (diagnostics/benchmarks)."""
    if window <= 0:
        raise ValueError("window must be positive")
    num_windows = (num_epochs + window - 1) // window
    counts = [0] * num_windows
    for epoch in schedule:
        counts[min(epoch // window, num_windows - 1)] += 1
    return counts
