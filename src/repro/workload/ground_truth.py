"""Ground-truth evaluation of range queries.

Given the true sensor dataset, the spanning tree, and a query, this module
computes the sets the accuracy metrics are defined against (paper §7.1):

* the **source nodes** -- nodes whose actual reading at the injection epoch
  satisfies the query, restricted to nodes that carry the queried sensor
  type;
* the **relevant / should-receive nodes** -- the sources plus every
  intermediate node on the tree paths from the root to the sources (the
  paper's "percentage of nodes involved in responding to a query" includes
  the forwarders, §7.1).

The root is excluded from the should-receive set: the query originates
there, so "reaching" it is not a dissemination outcome.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Set

from ..core.messages import RangeQuery
from ..network.addresses import NodeId
from ..network.spanning_tree import SpanningTree
from ..sensors.dataset import SensorDataset


def source_nodes(
    dataset: SensorDataset,
    query: RangeQuery,
    epoch: int,
    sensor_owners: Optional[Dict[str, Set[NodeId]]] = None,
    alive: Optional[Iterable[NodeId]] = None,
) -> Set[NodeId]:
    """True source nodes for ``query`` at ``epoch``.

    Parameters
    ----------
    dataset:
        Ground-truth readings.
    query:
        The range query.
    epoch:
        Epoch at which the query is evaluated (normally the injection epoch).
    sensor_owners:
        Mapping sensor type -> node ids that physically carry that sensor.
        When omitted every node in the dataset is assumed to carry the type
        (the paper's homogeneous default).
    alive:
        Restrict sources to this set of currently alive nodes, if given.
    """
    matches = set(dataset.matching_nodes(query.sensor_type, epoch, query.low, query.high))
    if sensor_owners is not None:
        owners = sensor_owners.get(query.sensor_type, set())
        matches &= set(owners)
    if alive is not None:
        matches &= set(alive)
    return matches


def relevant_nodes(
    tree: SpanningTree,
    sources: Iterable[NodeId],
    include_root: bool = False,
) -> Set[NodeId]:
    """Sources plus forwarding nodes on the root-to-source tree paths."""
    sources = [s for s in sources if s in tree]
    involved = tree.forwarding_set(sources)
    if not include_root:
        involved.discard(tree.root)
    return involved


def evaluate_query(
    dataset: SensorDataset,
    tree: SpanningTree,
    query: RangeQuery,
    epoch: int,
    sensor_owners: Optional[Dict[str, Set[NodeId]]] = None,
    alive: Optional[Iterable[NodeId]] = None,
) -> tuple[Set[NodeId], Set[NodeId]]:
    """Return ``(sources, should_receive)`` for one query.

    ``should_receive`` is what the paper calls the relevant nodes: sources
    plus intermediate forwarders, root excluded.
    """
    sources = source_nodes(dataset, query, epoch, sensor_owners, alive)
    should = relevant_nodes(tree, sources, include_root=False)
    return sources, should


def involvement_fraction(
    dataset: SensorDataset,
    tree: SpanningTree,
    query: RangeQuery,
    epoch: int,
    sensor_owners: Optional[Dict[str, Set[NodeId]]] = None,
    alive: Optional[Iterable[NodeId]] = None,
) -> float:
    """Fraction of (non-root) nodes involved in answering the query.

    This is the quantity the workload generator calibrates to hit the
    paper's 20 % / 40 % / 60 % "percentage of relevant nodes" targets.
    """
    _, should = evaluate_query(dataset, tree, query, epoch, sensor_owners, alive)
    denominator = max(1, tree.num_nodes - 1)
    return len(should) / denominator
