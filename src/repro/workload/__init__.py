"""Query workload: generation, injection schedules, rate prediction, ground truth."""

from .generator import GeneratedQuery, QueryWorkloadGenerator
from .ground_truth import (
    evaluate_query,
    involvement_fraction,
    relevant_nodes,
    source_nodes,
)
from .injection import (
    burst_schedule,
    diurnal_schedule,
    periodic_schedule,
    poisson_schedule,
    queries_per_window,
)
from .predictor import QueryRatePredictor

__all__ = [
    "GeneratedQuery",
    "QueryWorkloadGenerator",
    "evaluate_query",
    "involvement_fraction",
    "relevant_nodes",
    "source_nodes",
    "burst_schedule",
    "diurnal_schedule",
    "periodic_schedule",
    "poisson_schedule",
    "queries_per_window",
    "QueryRatePredictor",
]
