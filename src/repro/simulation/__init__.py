"""Discrete-event simulation kernel (the reproduction's OMNeT++ substitute).

Public surface:

* :class:`~repro.simulation.engine.Simulator` -- deterministic event scheduler
* :class:`~repro.simulation.process.SimProcess` -- module/process base class
* :class:`~repro.simulation.events.EventPriority` -- same-time ordering bands
* :class:`~repro.simulation.rng.RandomStreams` -- named reproducible RNG streams
* :class:`~repro.simulation.trace.Tracer` -- structured event trace
"""

from .clock import SimClock
from .engine import SimulationError, Simulator
from .events import Event, EventHandle, EventPriority
from .process import SimProcess
from .rng import RandomStreams
from .trace import NULL_TRACER, TraceRecord, Tracer

__all__ = [
    "SimClock",
    "SimulationError",
    "Simulator",
    "Event",
    "EventHandle",
    "EventPriority",
    "SimProcess",
    "RandomStreams",
    "Tracer",
    "TraceRecord",
    "NULL_TRACER",
]
