"""Simulated clock.

The clock is owned by the :class:`~repro.simulation.engine.Simulator` and is
advanced only by the event loop; user code must never set it directly.  It is
factored into its own class so that components (MAC layer, DirQ protocol,
metric collectors) can hold a reference to the clock without holding a
reference to the whole engine.
"""

from __future__ import annotations


class SimClock:
    """Monotonically non-decreasing simulated time source.

    Time is a ``float`` in abstract *epoch* units.  The paper samples every
    sensor once per "epoch" [12] and injects queries every 20 epochs, so the
    natural unit for this reproduction is one epoch == 1.0 simulated time
    unit.  Sub-epoch activity (MAC frame delivery, query forwarding hops) is
    scheduled at fractional offsets inside an epoch.
    """

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    def _advance(self, new_time: float) -> None:
        """Advance the clock (engine-internal).

        Raises
        ------
        ValueError
            If ``new_time`` would move the clock backwards.  A simulation
            kernel must never travel back in time; this is a hard invariant
            and violating it indicates a scheduler bug.
        """
        now = self._now
        if new_time < now:
            raise ValueError(
                f"simulated time may not move backwards: {new_time} < {now}"
            )
        # The event loop advances the clock once per executed event, so this
        # is one of the hottest statements in the simulator: skip the float()
        # conversion for the (overwhelmingly common) float input.
        self._now = new_time if type(new_time) is float else float(new_time)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimClock(now={self._now:.6g})"
