"""Structured simulation tracing.

A :class:`Tracer` records interesting simulation occurrences (message sends,
deliveries, protocol decisions, topology changes) as lightweight records.
It is the reproduction's replacement for OMNeT++'s event log: benchmarks run
with tracing disabled, tests and the examples enable it to assert on or
illustrate protocol behaviour.
"""

from __future__ import annotations

import dataclasses
from collections import Counter
from typing import Any, Dict, Iterator, List, Optional


@dataclasses.dataclass(frozen=True)
class TraceRecord:
    """One traced occurrence.

    Attributes
    ----------
    time:
        Simulated time of the occurrence.
    category:
        Coarse grouping such as ``"mac.tx"``, ``"dirq.update"``,
        ``"query.deliver"``; used for filtering.
    node:
        Identifier of the node the record concerns, or ``None`` for
        network-wide records.
    detail:
        Free-form payload describing the occurrence.
    """

    time: float
    category: str
    node: Optional[int]
    detail: Dict[str, Any]


class Tracer:
    """Bounded, filterable in-memory trace.

    Parameters
    ----------
    enabled:
        When ``False`` (the default for benchmark runs) every call is a
        near-no-op so tracing never distorts performance measurements.
    max_records:
        Upper bound on retained records; the oldest records are dropped once
        the bound is exceeded.  This keeps long (20 000 epoch) runs from
        accumulating unbounded memory.
    categories:
        Optional whitelist; when given, only records whose category is in the
        set are retained.
    """

    def __init__(
        self,
        enabled: bool = True,
        max_records: int = 100_000,
        categories: Optional[set[str]] = None,
    ):
        if max_records <= 0:
            raise ValueError("max_records must be positive")
        self.enabled = enabled
        self.max_records = int(max_records)
        self.categories = set(categories) if categories is not None else None
        self._records: List[TraceRecord] = []
        self._counts: Counter[str] = Counter()
        self._dropped = 0

    def record(
        self,
        time: float,
        category: str,
        node: Optional[int] = None,
        **detail: Any,
    ) -> None:
        """Record one occurrence (no-op when tracing is disabled)."""
        if not self.enabled:
            return
        if self.categories is not None and category not in self.categories:
            return
        self._counts[category] += 1
        if len(self._records) >= self.max_records:
            self._records.pop(0)
            self._dropped += 1
        self._records.append(TraceRecord(time, category, node, dict(detail)))

    # -- access -----------------------------------------------------------

    @property
    def records(self) -> List[TraceRecord]:
        """All retained records in insertion (time) order."""
        return list(self._records)

    @property
    def dropped(self) -> int:
        """Number of records discarded because of the retention bound."""
        return self._dropped

    def count(self, category: str) -> int:
        """Total records ever seen for ``category`` (including dropped)."""
        return self._counts[category]

    def filter(
        self,
        category: Optional[str] = None,
        node: Optional[int] = None,
        since: float = float("-inf"),
        until: float = float("inf"),
    ) -> Iterator[TraceRecord]:
        """Iterate retained records matching the given criteria."""
        for rec in self._records:
            if category is not None and rec.category != category:
                continue
            if node is not None and rec.node != node:
                continue
            if not (since <= rec.time <= until):
                continue
            yield rec

    def clear(self) -> None:
        """Drop all retained records and reset counters."""
        self._records.clear()
        self._counts.clear()
        self._dropped = 0

    def summary(self) -> Dict[str, int]:
        """Mapping of category -> total occurrence count."""
        return dict(self._counts)


NULL_TRACER = Tracer(enabled=False, max_records=1)
"""Shared disabled tracer for components that were not given one."""
