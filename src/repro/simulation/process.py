"""Process / module abstraction on top of the event engine.

OMNeT++ structures a simulation as *modules* that exchange messages and set
timers.  :class:`SimProcess` provides the same affordances for this
reproduction: a named component bound to a :class:`~repro.simulation.engine.
Simulator` that can schedule timers on itself and receive messages delivered
by lower layers.

Protocol layers (LMAC, DirQ, flooding) and infrastructure components (the
wireless channel, the experiment driver) all derive from this class.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from .engine import Simulator
from .events import EventHandle, EventPriority


class SimProcess:
    """A named simulation participant with timer support.

    Parameters
    ----------
    sim:
        The simulator this process is bound to.
    name:
        Human-readable name used in traces and error messages.
    """

    def __init__(self, sim: Simulator, name: str):
        if sim is None:
            raise ValueError("SimProcess requires a Simulator instance")
        self.sim = sim
        self.name = str(name)
        self._timers: Dict[str, EventHandle] = {}
        self._timer_labels: Dict[str, str] = {}
        self._started = False

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Start the process.

        Calls :meth:`on_start` exactly once; subsequent calls are ignored so
        experiment drivers can idempotently (re)start whole stacks.
        """
        if self._started:
            return
        self._started = True
        self.on_start()

    @property
    def started(self) -> bool:
        return self._started

    def on_start(self) -> None:
        """Hook invoked when the process starts.  Default: no-op."""

    # -- time --------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self.sim.now

    # -- timers ------------------------------------------------------------

    def set_timer(
        self,
        name: str,
        delay: float,
        callback: Optional[Callable[[], Any]] = None,
        priority: int = EventPriority.TIMER,
    ) -> EventHandle:
        """Arm (or re-arm) a named timer ``delay`` time units from now.

        If a timer with the same name is already pending it is cancelled
        first, so each name refers to at most one outstanding timer.  When
        ``callback`` is omitted, :meth:`on_timer` is invoked with the timer
        name -- the usual pattern for protocol state machines.
        """
        self.cancel_timer(name)

        def fire() -> None:
            self._timers.pop(name, None)
            if callback is not None:
                callback()
            else:
                self.on_timer(name)

        # Periodic timers (beacons, protocol ticks) re-arm with the same name
        # for the whole run; cache the label string instead of rebuilding it.
        label = self._timer_labels.get(name)
        if label is None:
            label = self._timer_labels[name] = f"{self.name}.timer.{name}"
        handle = self.sim.schedule_after(delay, fire, priority=priority, label=label)
        self._timers[name] = handle
        return handle

    def cancel_timer(self, name: str) -> bool:
        """Cancel the named timer if pending.  Returns ``True`` if cancelled."""
        handle = self._timers.pop(name, None)
        if handle is None:
            return False
        return handle.cancel()

    def timer_pending(self, name: str) -> bool:
        """Whether a timer with this name is currently armed."""
        handle = self._timers.get(name)
        return handle is not None and not handle.cancelled

    def cancel_all_timers(self) -> int:
        """Cancel every pending timer; returns how many were cancelled."""
        cancelled = 0
        for name in list(self._timers):
            if self.cancel_timer(name):
                cancelled += 1
        return cancelled

    def on_timer(self, name: str) -> None:
        """Hook invoked when a named timer without explicit callback fires."""

    # -- messaging ---------------------------------------------------------

    def deliver(self, message: Any, sender: Any = None) -> None:
        """Deliver a message to this process (called by lower layers)."""
        self.on_message(message, sender)

    def on_message(self, message: Any, sender: Any = None) -> None:
        """Hook invoked for each delivered message.  Default: no-op."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"
