"""Discrete-event simulation engine.

This module is the reproduction's substitute for OMNeT++ [11 in the paper]:
a deterministic event-driven kernel with a simulated clock, a priority event
queue, and named processes (see :mod:`repro.simulation.process`).

Design choices
--------------
* **Determinism.**  Events are ordered by ``(time, priority, sequence)``;
  the sequence counter makes insertion order the final tie-breaker, so a
  simulation with the same seed replays identically.
* **Lazy cancellation.**  Cancelled events remain on the heap and are skipped
  when popped; this keeps :meth:`Simulator.cancel` O(1).
* **Epoch-driven operation.**  The experiment runner advances the network one
  *epoch* at a time (the paper's sampling period).  Within an epoch, protocol
  messages are exchanged as ordinary events at fractional times; the runner
  calls :meth:`Simulator.run_until` with the next epoch boundary to drain
  them.  This hybrid keeps 20 000-epoch runs tractable in pure Python while
  preserving event-level message ordering.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional

from .clock import SimClock
from .events import Event, EventHandle, EventPriority
from .trace import NULL_TRACER, Tracer


class SimulationError(RuntimeError):
    """Raised for scheduler misuse (scheduling in the past, etc.)."""


class Simulator:
    """Deterministic discrete-event scheduler.

    Parameters
    ----------
    start_time:
        Initial simulated time (defaults to 0.0).
    tracer:
        Optional :class:`~repro.simulation.trace.Tracer`; when omitted a
        disabled tracer is used.

    Examples
    --------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule_at(1.0, lambda: fired.append("a"))
    >>> _ = sim.schedule_at(0.5, lambda: fired.append("b"))
    >>> sim.run()
    2
    >>> fired
    ['b', 'a']
    """

    def __init__(self, start_time: float = 0.0, tracer: Optional[Tracer] = None):
        self.clock = SimClock(start_time)
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._queue: list[Event] = []
        self._seq = 0
        self._executed = 0
        self._running = False
        self._stop_requested = False

    # -- inspection --------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self.clock.now

    @property
    def pending(self) -> int:
        """Number of not-yet-cancelled events still in the queue."""
        return sum(1 for ev in self._queue if not ev.cancelled)

    @property
    def executed(self) -> int:
        """Total number of events executed so far."""
        return self._executed

    def peek_time(self) -> Optional[float]:
        """Simulated time of the next pending event, or ``None`` if empty."""
        self._discard_cancelled_head()
        if not self._queue:
            return None
        return self._queue[0].time

    # -- scheduling --------------------------------------------------------

    def schedule_at(
        self,
        time: float,
        callback: Callable[[], Any],
        priority: int = EventPriority.DEFAULT,
        label: str = "",
    ) -> EventHandle:
        """Schedule ``callback`` to run at absolute simulated ``time``.

        Raises
        ------
        SimulationError
            If ``time`` is before the current simulated time.
        """
        if time < self.clock.now:
            raise SimulationError(
                f"cannot schedule event at t={time} before current time "
                f"t={self.clock.now}"
            )
        event = Event(
            time=float(time),
            priority=int(priority),
            seq=self._seq,
            callback=callback,
            label=label,
        )
        self._seq += 1
        heapq.heappush(self._queue, event)
        return EventHandle(event)

    def schedule_after(
        self,
        delay: float,
        callback: Callable[[], Any],
        priority: int = EventPriority.DEFAULT,
        label: str = "",
    ) -> EventHandle:
        """Schedule ``callback`` to run ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError(f"delay must be non-negative, got {delay}")
        return self.schedule_at(self.clock.now + delay, callback, priority, label)

    @staticmethod
    def cancel(handle: EventHandle) -> bool:
        """Cancel a previously scheduled event.  Returns ``True`` if pending."""
        return handle.cancel()

    # -- execution ---------------------------------------------------------

    def step(self) -> bool:
        """Execute the single next pending event.

        Returns ``True`` if an event was executed, ``False`` if the queue was
        empty.
        """
        self._discard_cancelled_head()
        if not self._queue:
            return False
        event = heapq.heappop(self._queue)
        self.clock._advance(event.time)
        self._executed += 1
        event.callback()
        return True

    def run(self, max_events: Optional[int] = None) -> int:
        """Run until the event queue is exhausted.

        Parameters
        ----------
        max_events:
            Optional safety bound on the number of events to execute; useful
            in tests to catch runaway event storms.

        Returns
        -------
        int
            Number of events executed by this call.
        """
        return self._run_loop(until=None, max_events=max_events)

    def run_until(self, until: float, max_events: Optional[int] = None) -> int:
        """Run all events scheduled at times ``<= until``.

        The clock is left at ``until`` (or later if an executed event pushed
        it exactly there), so subsequent :meth:`schedule_after` calls are
        relative to the epoch boundary even if no event fired at it.
        """
        executed = self._run_loop(until=until, max_events=max_events)
        if self.clock.now < until:
            self.clock._advance(until)
        return executed

    def stop(self) -> None:
        """Request the current :meth:`run`/:meth:`run_until` loop to stop."""
        self._stop_requested = True

    # -- internals ---------------------------------------------------------

    def _discard_cancelled_head(self) -> None:
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)

    def _run_loop(self, until: Optional[float], max_events: Optional[int]) -> int:
        if self._running:
            raise SimulationError("Simulator.run is not reentrant")
        self._running = True
        self._stop_requested = False
        executed = 0
        try:
            while True:
                if self._stop_requested:
                    break
                if max_events is not None and executed >= max_events:
                    break
                self._discard_cancelled_head()
                if not self._queue:
                    break
                head = self._queue[0]
                if until is not None and head.time > until:
                    break
                heapq.heappop(self._queue)
                self.clock._advance(head.time)
                self._executed += 1
                executed += 1
                head.callback()
        finally:
            self._running = False
        return executed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Simulator(now={self.now:.6g}, pending={self.pending}, "
            f"executed={self._executed})"
        )
