"""Discrete-event simulation engine.

This module is the reproduction's substitute for OMNeT++ [11 in the paper]:
a deterministic event-driven kernel with a simulated clock, a priority event
queue, and named processes (see :mod:`repro.simulation.process`).

Design choices
--------------
* **Determinism.**  Events are ordered by ``(time, priority, sequence)``;
  the sequence counter makes insertion order the final tie-breaker, so a
  simulation with the same seed replays identically.  The heap stores plain
  ``(time, priority, seq, event)`` tuples: the unique sequence number means
  comparisons never fall through to the :class:`Event` object, so ordering
  is resolved entirely by C-level tuple comparison.
* **Lazy cancellation with compaction.**  Cancelled events remain on the
  heap and are skipped when popped; this keeps :meth:`Simulator.cancel`
  O(1).  Unlike a purely lazy scheme (which leaks one heap entry per
  cancelled event for the whole run), the engine counts cancelled entries
  and compacts the heap in place once they dominate it, so the queue size
  stays proportional to the number of *live* events.
* **Cached head time.**  The earliest scheduled time is tracked as a cheap
  lower bound, making :meth:`run_until` O(1) when nothing is due before the
  boundary -- the common case for the experiment runner's per-epoch drains.
* **Epoch-driven operation.**  The experiment runner advances the network one
  *epoch* at a time (the paper's sampling period).  Within an epoch, protocol
  messages are exchanged as ordinary events at fractional times; the runner
  calls :meth:`Simulator.run_until` with the next epoch boundary to drain
  them.  This hybrid keeps 20 000-epoch runs tractable in pure Python while
  preserving event-level message ordering.

Determinism contract
--------------------
The engine itself owns **no randomness**: every stochastic component draws
from a named stream of the trial's :class:`~repro.simulation.rng.
RandomStreams`, which is seeded from the experiment config alone (the batch
layer re-derives it per trial, see :mod:`repro.experiments.batch`).  Given
the same config, the event sequence -- and therefore every measurement --
replays bit-identically regardless of wall clock, worker count, or how many
sibling simulations share the process.  Optimisations to this module must
preserve the *observable* pop order ``(time, priority, sequence)`` exactly;
the compaction and fast paths above are safe because they never reorder
live events, only skip or drop cancelled ones.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional

from .clock import SimClock
from .events import Event, EventHandle, EventPriority
from .trace import Tracer


class SimulationError(RuntimeError):
    """Raised for scheduler misuse (scheduling in the past, etc.)."""


class Simulator:
    """Deterministic discrete-event scheduler.

    Parameters
    ----------
    start_time:
        Initial simulated time (defaults to 0.0).
    tracer:
        Optional :class:`~repro.simulation.trace.Tracer`; when omitted a
        disabled tracer is used.  Kept as a convenience for callers that
        only trace -- internally it is wrapped into ``instrumentation``.
    instrumentation:
        Optional :class:`~repro.obs.instrumentation.Instrumentation`
        bundling tracer + metrics + phase timer behind one handle.  Takes
        precedence over ``tracer`` when both are given.

    Examples
    --------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule_at(1.0, lambda: fired.append("a"))
    >>> _ = sim.schedule_at(0.5, lambda: fired.append("b"))
    >>> sim.run()
    2
    >>> fired
    ['b', 'a']
    """

    #: Compaction threshold: the heap is rebuilt (dropping cancelled
    #: entries) once at least this many cancelled events are queued *and*
    #: they make up at least half of the heap.  The invariant is therefore
    #: ``queue_size < 2 * pending + COMPACT_MIN_CANCELLED``.
    COMPACT_MIN_CANCELLED = 64

    def __init__(
        self,
        start_time: float = 0.0,
        tracer: Optional[Tracer] = None,
        instrumentation=None,
    ):
        self.clock = SimClock(start_time)
        # Imported lazily: repro.simulation/__init__ eagerly imports this
        # module, and repro.obs.instrumentation imports simulation.trace,
        # so a module-level import here would cycle during package init.
        from ..obs.instrumentation import NULL_INSTRUMENTATION, Instrumentation

        if instrumentation is None:
            instrumentation = (
                Instrumentation(tracer=tracer)
                if tracer is not None
                else NULL_INSTRUMENTATION
            )
        self.instrumentation = instrumentation
        self.tracer = instrumentation.tracer
        self._heap: list = []
        self._seq = 0
        self._executed = 0
        self._running = False
        self._stop_requested = False
        #: Cancelled events still sitting in the heap.
        self._cancelled_in_heap = 0
        #: Lifetime totals harvested into metrics at trial end: the hot
        #: loop pays one int increment, never a registry call.
        self._cancelled_total = 0
        self._compactions = 0
        #: Lower bound on the next pending event time (exact when the head
        #: entry is live; conservative -- never *above* the true head --
        #: when the head was cancelled).  ``None`` iff the heap is empty.
        self._head_time: Optional[float] = None

    # -- inspection --------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self.clock.now

    @property
    def pending(self) -> int:
        """Number of not-yet-cancelled events still in the queue (O(1))."""
        return len(self._heap) - self._cancelled_in_heap

    @property
    def queue_size(self) -> int:
        """Heap entries currently held, including cancelled ones."""
        return len(self._heap)

    @property
    def cancelled_in_queue(self) -> int:
        """Cancelled events awaiting compaction or pop-time discard."""
        return self._cancelled_in_heap

    @property
    def executed(self) -> int:
        """Total number of events executed so far."""
        return self._executed

    @property
    def cancelled_total(self) -> int:
        """Events ever cancelled (lifetime count, survives compaction)."""
        return self._cancelled_total

    @property
    def compactions(self) -> int:
        """Heap compaction passes performed so far."""
        return self._compactions

    def peek_time(self) -> Optional[float]:
        """Simulated time of the next pending event, or ``None`` if empty."""
        self._discard_cancelled_head()
        if not self._heap:
            return None
        return self._heap[0][0]

    # -- scheduling --------------------------------------------------------

    def schedule_at(
        self,
        time: float,
        callback: Callable[[], Any],
        priority: int = EventPriority.DEFAULT,
        label: str = "",
    ) -> EventHandle:
        """Schedule ``callback`` to run at absolute simulated ``time``.

        Raises
        ------
        SimulationError
            If ``time`` is before the current simulated time.
        """
        time = float(time)
        if time < self.clock.now:
            raise SimulationError(
                f"cannot schedule event at t={time} before current time "
                f"t={self.clock.now}"
            )
        seq = self._seq
        self._seq = seq + 1
        event = Event(
            time=time,
            priority=int(priority),
            seq=seq,
            callback=callback,
            label=label,
        )
        heapq.heappush(self._heap, (time, event.priority, seq, event))
        head = self._head_time
        if head is None or time < head:
            self._head_time = time
        return EventHandle(event, self)

    def schedule_after(
        self,
        delay: float,
        callback: Callable[[], Any],
        priority: int = EventPriority.DEFAULT,
        label: str = "",
    ) -> EventHandle:
        """Schedule ``callback`` to run ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError(f"delay must be non-negative, got {delay}")
        return self.schedule_at(self.clock.now + delay, callback, priority, label)

    @staticmethod
    def cancel(handle: EventHandle) -> bool:
        """Cancel a previously scheduled event.  Returns ``True`` if pending."""
        return handle.cancel()

    # -- execution ---------------------------------------------------------

    def step(self) -> bool:
        """Execute the single next pending event.

        Returns ``True`` if an event was executed, ``False`` if the queue was
        empty.
        """
        self._discard_cancelled_head()
        if not self._heap:
            return False
        time, _, _, event = heapq.heappop(self._heap)
        self._head_time = self._heap[0][0] if self._heap else None
        self.clock._advance(time)
        self._executed += 1
        event.executed = True
        event.callback()
        return True

    def run(self, max_events: Optional[int] = None) -> int:
        """Run until the event queue is exhausted.

        Parameters
        ----------
        max_events:
            Optional safety bound on the number of events to execute; useful
            in tests to catch runaway event storms.

        Returns
        -------
        int
            Number of events executed by this call.
        """
        return self._run_loop(until=None, max_events=max_events)

    def run_until(self, until: float, max_events: Optional[int] = None) -> int:
        """Run all events scheduled at times ``<= until``.

        The clock is left at ``until`` (or later if an executed event pushed
        it exactly there), so subsequent :meth:`schedule_after` calls are
        relative to the epoch boundary even if no event fired at it.

        When nothing is due at or before ``until`` this is O(1): the cached
        head time lets the call skip the event loop entirely and just
        advance the clock (the experiment runner's epoch fast path).
        """
        head = self._head_time
        if head is None or head > until:
            if self._running:
                raise SimulationError("Simulator.run is not reentrant")
            if self.clock.now < until:
                self.clock._advance(until)
            return 0
        executed = self._run_loop(until=until, max_events=max_events)
        if self.clock.now < until:
            self.clock._advance(until)
        return executed

    def stop(self) -> None:
        """Request the current :meth:`run`/:meth:`run_until` loop to stop."""
        self._stop_requested = True

    # -- internals ---------------------------------------------------------

    def _discard_cancelled_head(self) -> None:
        heap = self._heap
        removed = 0
        while heap and heap[0][3].cancelled:
            heapq.heappop(heap)
            removed += 1
        if removed:
            self._cancelled_in_heap -= removed
        self._head_time = heap[0][0] if heap else None

    def _note_cancelled(self, event: Event) -> None:
        """Bookkeeping hook invoked by :meth:`EventHandle.cancel`.

        Keeps :attr:`pending` exact without scanning the heap and triggers
        in-place compaction once cancelled entries dominate the queue.
        """
        self._cancelled_in_heap += 1
        self._cancelled_total += 1
        cancelled = self._cancelled_in_heap
        if (
            cancelled >= self.COMPACT_MIN_CANCELLED
            and 2 * cancelled >= len(self._heap)
        ):
            self._compact()

    def _compact(self) -> None:
        """Rebuild the heap without cancelled entries (in place, O(n))."""
        heap = self._heap
        heap[:] = [entry for entry in heap if not entry[3].cancelled]
        heapq.heapify(heap)
        self._cancelled_in_heap = 0
        self._compactions += 1
        self._head_time = heap[0][0] if heap else None

    def _run_loop(self, until: Optional[float], max_events: Optional[int]) -> int:
        if self._running:
            raise SimulationError("Simulator.run is not reentrant")
        self._running = True
        self._stop_requested = False
        executed = 0
        # The heap list object is stable: _compact rewrites it in place, so
        # this local alias stays valid even if a callback triggers compaction.
        heap = self._heap
        heappop = heapq.heappop
        clock = self.clock
        try:
            while True:
                if self._stop_requested:
                    break
                if max_events is not None and executed >= max_events:
                    break
                while heap and heap[0][3].cancelled:
                    heappop(heap)
                    self._cancelled_in_heap -= 1
                if not heap:
                    break
                entry = heap[0]
                if until is not None and entry[0] > until:
                    break
                heappop(heap)
                event = entry[3]
                clock._advance(entry[0])
                self._executed += 1
                executed += 1
                event.executed = True
                event.callback()
        finally:
            self._running = False
            self._head_time = heap[0][0] if heap else None
        return executed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Simulator(now={self.now:.6g}, pending={self.pending}, "
            f"executed={self._executed})"
        )
