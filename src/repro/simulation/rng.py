"""Deterministic random-stream management.

Every stochastic component of a simulation (topology placement, synthetic
phenomena, query workload, MAC slot election, channel loss) draws from its
own named stream.  All streams are derived from a single experiment seed via
:class:`numpy.random.SeedSequence`, so

* the whole experiment is reproducible from one integer, and
* adding a new consumer of randomness does not perturb the draws seen by
  existing consumers (streams are independent, not interleaved).

This is the standard "one generator per purpose" discipline used by large
simulation codebases and recommended by the NumPy random API.
"""

from __future__ import annotations

import hashlib
from typing import Dict

import numpy as np

#: Central registry of named RNG streams: stream name -> the one module
#: allowed to request it via :meth:`RandomStreams.get`.
#:
#: Two call sites sharing a stream name draw from the *same* generator
#: and silently correlate -- a statistical failure no unit test catches.
#: The registry makes collisions impossible by construction: every
#: stream name used anywhere in ``src/repro`` must be a string literal,
#: registered here, and requested only from its owner module (enforced
#: statically by ``tools/reprolint`` rules RL401-RL404; see
#: ``docs/linting.md``).  All streams are currently requested by the
#: experiment runner -- the composition root -- which passes the
#: generators down to the components that consume them.
#:
#: The registry is deliberately *not* enforced at runtime: tests and
#: notebooks may create ad-hoc streams, and the derive_seed replicate
#: namespace ("rep-0", "rep-1", ...) is a seed-space mechanism, not a
#: stream name.
STREAM_REGISTRY: Dict[str, str] = {
    "topology": "repro.experiments.runner",
    "channel": "repro.experiments.runner",
    "phenomena": "repro.experiments.runner",
    "mac": "repro.experiments.runner",
    "workload": "repro.experiments.runner",
    "sensor-assignment": "repro.experiments.runner",
    "scenario-churn": "repro.experiments.runner",
    "scenario-mobility": "repro.experiments.runner",
    "scenario-traffic": "repro.experiments.runner",
    "scenario-energy": "repro.experiments.runner",
}


def _stable_stream_key(name: str) -> int:
    """Map a stream name to a stable 63-bit integer.

    Python's ``hash`` is salted per process; we need a digest that is stable
    across runs and machines so that named streams are reproducible.
    """
    digest = hashlib.sha256(name.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little") & 0x7FFF_FFFF_FFFF_FFFF


class RandomStreams:
    """Factory of named, independent :class:`numpy.random.Generator` streams.

    Parameters
    ----------
    seed:
        Master experiment seed.  Two :class:`RandomStreams` instances built
        from the same seed hand out identical streams for identical names.

    Examples
    --------
    >>> streams = RandomStreams(seed=42)
    >>> topo_rng = streams.get("topology")
    >>> data_rng = streams.get("phenomena")
    >>> float(topo_rng.random()) == float(RandomStreams(42).get("topology").random())
    True
    """

    def __init__(self, seed: int = 0):
        if not isinstance(seed, (int, np.integer)):
            raise TypeError(f"seed must be an integer, got {type(seed).__name__}")
        self._seed = int(seed)
        self._cache: Dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """The master seed this factory was built from."""
        return self._seed

    def get(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        Repeated calls with the same name return the *same* generator object,
        so consumers share a stream if and only if they share a name.
        """
        if not name:
            raise ValueError("stream name must be a non-empty string")
        if name not in self._cache:
            seq = np.random.SeedSequence([self._seed, _stable_stream_key(name)])
            self._cache[name] = np.random.default_rng(seq)
        return self._cache[name]

    @classmethod
    def derive_seed(cls, seed: int, name: str) -> int:
        """Derive a new master seed from ``(seed, name)``, deterministically.

        This is how the batch layer assigns independent seeds to sweep
        replications: each :class:`~repro.experiments.batch.TrialSpec`
        replicate gets ``derive_seed(base_seed, f"rep-{i}")``, so a trial's
        randomness is a pure function of its declared config -- independent
        of worker count and execution order.
        """
        if not isinstance(seed, (int, np.integer)):
            raise TypeError(f"seed must be an integer, got {type(seed).__name__}")
        return int(seed) ^ _stable_stream_key(name)

    def spawn(self, name: str) -> "RandomStreams":
        """Derive a child factory (e.g. one per replication of a sweep)."""
        return RandomStreams(self.derive_seed(self._seed, name))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RandomStreams(seed={self._seed}, streams={sorted(self._cache)})"
