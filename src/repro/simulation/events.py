"""Event primitives for the discrete-event simulation kernel.

The kernel (see :mod:`repro.simulation.engine`) is the stand-in for the
OMNeT++ discrete-event simulator the paper used.  Everything that happens in
a simulation -- a MAC frame being delivered, a node sampling its sensor, a
query being injected at the root -- is represented as an :class:`Event`
scheduled at a simulated time.

Events are ordered by ``(time, priority, sequence)`` so that simulations are
fully deterministic: two events at the same simulated time are executed in
priority order, and ties beyond that are broken by insertion order.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Any, Callable


class EventPriority(enum.IntEnum):
    """Execution priority for events that share the same simulated time.

    Lower values execute first.  The bands are chosen so that, within one
    simulated instant, control-plane bookkeeping happens before the MAC
    layer delivers frames, which happens before application-level timers
    fire.  This mirrors the bottom-up processing order of a real stack and
    keeps traces easy to reason about.
    """

    CONTROL = 0
    MAC = 10
    NETWORK = 20
    APPLICATION = 30
    TIMER = 40
    DEFAULT = 50


@dataclasses.dataclass(slots=True)
class Event:
    """A single scheduled occurrence in the simulation.

    Parameters
    ----------
    time:
        Simulated time at which the event fires.
    priority:
        Tie-breaking priority; see :class:`EventPriority`.
    seq:
        Monotonically increasing sequence number assigned by the scheduler;
        guarantees deterministic FIFO ordering among equal ``(time,
        priority)`` events.
    callback:
        Zero-argument callable invoked when the event fires.  Any payload
        should be bound into the callable (e.g. via ``functools.partial`` or
        a closure).
    label:
        Human-readable description used by the tracer.
    """

    time: float
    priority: int
    seq: int
    callback: Callable[[], Any]
    label: str = ""
    cancelled: bool = False
    executed: bool = False

    def sort_key(self) -> tuple[float, int, int]:
        return (self.time, self.priority, self.seq)

    def __lt__(self, other: "Event") -> bool:  # heapq ordering
        return self.sort_key() < other.sort_key()


class EventHandle:
    """Opaque handle returned by the scheduler, used to cancel an event.

    Cancellation is *lazy*: the event stays in the heap but is skipped when
    it is popped.  This is O(1) and is the standard approach for simulation
    kernels where cancelled events are a small fraction of the total.

    Handles created by the :class:`~repro.simulation.engine.Simulator` carry
    a back-reference to it so the scheduler can keep an exact pending-event
    counter and compact the heap once too many cancelled entries accumulate
    (lazy cancellation alone would leak heap entries for the whole run).
    """

    __slots__ = ("_event", "_scheduler")

    def __init__(self, event: Event, scheduler: Any = None):
        self._event = event
        self._scheduler = scheduler

    @property
    def time(self) -> float:
        """Simulated time at which the underlying event is scheduled."""
        return self._event.time

    @property
    def label(self) -> str:
        return self._event.label

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    def cancel(self) -> bool:
        """Cancel the event.

        Returns ``True`` if the event was still pending and is now
        cancelled, ``False`` if it had already been cancelled.
        """
        event = self._event
        if event.cancelled:
            return False
        event.cancelled = True
        if self._scheduler is not None and not event.executed:
            self._scheduler._note_cancelled(event)
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"EventHandle(t={self.time:.6g}, {self.label!r}, {state})"
