"""The one sanctioned wall-clock accessor.

Simulation results must be a pure function of their configuration, so
reprolint rule RL102 forbids ``time.time()`` / ``datetime.now()``
everywhere in ``src/repro`` -- except here.  Code that genuinely needs
wall-clock time (cache-entry ages, CLI timestamps) accepts an injectable
``now`` parameter and lets its *entry point* default it from
:func:`wall_now`, which keeps the core logic deterministic and testable
with a frozen clock (see ``repro.experiments.cache``).

Simulated time is unrelated: that is :mod:`repro.simulation.clock`.
"""

from __future__ import annotations

import time


def wall_now() -> float:
    """Current wall-clock time in seconds since the epoch.

    The single place in ``src/repro`` allowed to read the host clock.
    """
    return time.time()


def mono_now() -> float:
    """Monotonic host time in seconds, for measuring durations.

    The sanctioned accessor behind profiling code (``repro.obs.phases``,
    run-telemetry throughput/ETA).  Profilers accept an injectable
    ``now`` callable defaulting to this function, so phase tables and
    progress snapshots are testable with a scripted clock -- and so no
    measured duration ever reaches a result fingerprint (the obs layer
    keeps timings in the hash-exempt ``telemetry`` payload only).
    """
    return time.perf_counter()
