"""Shared utility helpers."""

from .validation import (
    require_fraction,
    require_non_negative,
    require_positive,
    require_subset,
    require_unique,
)

__all__ = [
    "require_fraction",
    "require_non_negative",
    "require_positive",
    "require_subset",
    "require_unique",
]
