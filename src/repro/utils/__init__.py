"""Shared utility helpers."""

from .clock import wall_now
from .validation import (
    require_fraction,
    require_non_negative,
    require_positive,
    require_subset,
    require_unique,
)

__all__ = [
    "require_fraction",
    "wall_now",
    "require_non_negative",
    "require_positive",
    "require_subset",
    "require_unique",
]
