"""Small validation helpers shared across packages."""

from __future__ import annotations

from typing import Iterable, Sequence, TypeVar

T = TypeVar("T")


def require_positive(value: float, name: str) -> float:
    """Raise ``ValueError`` unless ``value`` is strictly positive."""
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return value


def require_non_negative(value: float, name: str) -> float:
    """Raise ``ValueError`` unless ``value`` is >= 0."""
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value}")
    return value


def require_fraction(value: float, name: str, inclusive: bool = True) -> float:
    """Raise ``ValueError`` unless ``value`` lies in [0, 1] (or (0, 1))."""
    if inclusive:
        ok = 0.0 <= value <= 1.0
    else:
        ok = 0.0 < value < 1.0
    if not ok:
        bounds = "[0, 1]" if inclusive else "(0, 1)"
        raise ValueError(f"{name} must be in {bounds}, got {value}")
    return value


def require_unique(values: Sequence[T], name: str) -> Sequence[T]:
    """Raise ``ValueError`` if ``values`` contains duplicates."""
    if len(set(values)) != len(values):
        raise ValueError(f"{name} contains duplicate entries")
    return values


def require_subset(candidates: Iterable[T], allowed: Iterable[T], name: str) -> None:
    """Raise ``ValueError`` unless every candidate is in ``allowed``."""
    extra = set(candidates) - set(allowed)
    if extra:
        raise ValueError(f"{name} contains unknown entries: {sorted(map(str, extra))}")
