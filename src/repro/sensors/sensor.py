"""Sensors mounted on nodes.

A :class:`Sensor` is the bridge between a node and the ground-truth
:class:`~repro.sensors.dataset.SensorDataset`: sampling it at an epoch
returns the dataset value for that node (plus optional calibration error),
so the protocol under test observes exactly the synthetic phenomena the
experiment generated.

The paper notes as future work that continuous sampling is energy-hungry;
:class:`SamplingCounter` tracks how many acquisitions each sensor performed
so that ablations can quantify that cost.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Optional

from ..network.addresses import NodeId
from .dataset import SensorDataset


class SamplingCounter:
    """Counts sensor acquisitions per (node, sensor type)."""

    def __init__(self) -> None:
        self._counts: Dict[tuple[NodeId, str], int] = defaultdict(int)

    def record(self, node_id: NodeId, sensor_type: str) -> None:
        self._counts[(node_id, sensor_type)] += 1

    def count(self, node_id: Optional[NodeId] = None, sensor_type: Optional[str] = None) -> int:
        """Total acquisitions matching the given filters."""
        total = 0
        for (nid, stype), c in self._counts.items():
            if node_id is not None and nid != node_id:
                continue
            if sensor_type is not None and stype != sensor_type:
                continue
            total += c
        return total

    def reset(self) -> None:
        self._counts.clear()


class Sensor:
    """One physical sensor of a given type mounted on a node.

    Parameters
    ----------
    node_id:
        The node the sensor is mounted on.
    sensor_type:
        Which phenomenon it measures (must exist in the dataset).
    dataset:
        Ground-truth dataset backing the readings.
    calibration_offset:
        Constant additive error of this particular sensor unit (defaults to
        a perfectly calibrated sensor).
    counter:
        Optional :class:`SamplingCounter` to record acquisitions in.
    """

    def __init__(
        self,
        node_id: NodeId,
        sensor_type: str,
        dataset: SensorDataset,
        calibration_offset: float = 0.0,
        counter: Optional[SamplingCounter] = None,
    ):
        if not dataset.has_type(sensor_type):
            raise KeyError(f"dataset has no sensor type {sensor_type!r}")
        dataset.column_of(node_id)  # raises if the node is unknown
        self.node_id = node_id
        self.sensor_type = sensor_type
        self.dataset = dataset
        self.calibration_offset = float(calibration_offset)
        self.counter = counter
        # Sampling happens once per epoch for the whole run, so the node's
        # ground-truth column is resolved once here instead of going through
        # dataset.reading's per-call type/column lookups.
        self._series = dataset.node_series(sensor_type, node_id)
        self._num_epochs = len(self._series)
        # Pre-bound acquisition-counter bucket: record() is one dict update,
        # but at nodes x types x 20 000 epochs even the method call shows up.
        self._counts = counter._counts if counter is not None else None
        self._count_key = (node_id, sensor_type)

    def sample(self, epoch: int) -> float:
        """Acquire a reading for the given epoch."""
        counts = self._counts
        if counts is not None:
            counts[self._count_key] += 1
        if not 0 <= epoch < self._num_epochs:
            raise IndexError(
                f"epoch {epoch} out of range [0, {self._num_epochs})"
            )
        # ndarray.item() returns a Python float directly, skipping the
        # intermediate numpy scalar that float(arr[i]) would build.
        return self._series.item(epoch) + self.calibration_offset

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Sensor(node={self.node_id}, type={self.sensor_type!r})"
