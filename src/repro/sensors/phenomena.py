"""Synthetic environmental phenomena generator.

The paper evaluates DirQ on "a synthetic dataset with 4 sensor types ...
where sensor values of nodes located close to one another are spatially
related.  The generated sensor data is also related in the temporal
dimension" (§7).  This module reproduces that dataset generator:

* **Spatial correlation** comes from a squared-exponential (RBF) kernel over
  node positions: the field value at two nodes a distance ``r`` apart has
  correlation ``exp(-r^2 / (2 * spatial_scale^2))``.
* **Temporal correlation** comes from an AR(1) (Ornstein–Uhlenbeck style)
  recursion whose coefficient is chosen so that the autocorrelation time is
  ``temporal_scale`` epochs.
* A deterministic **diurnal cycle** (shared by all nodes, with a small
  per-node phase offset derived from position) can be superimposed, matching
  how real environmental parameters behave and exercising DirQ's adaptation
  to the *rate of change* of the measured parameter.

The generation is fully vectorised: all epochs for all nodes are produced in
a handful of NumPy/SciPy array operations, which keeps the 20 000-epoch,
4-type, 50-node dataset generation well under a second.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np
from scipy.signal import lfilter

from .types import SensorTypeSpec


def spatial_covariance(
    positions: np.ndarray, spatial_scale: float, jitter: float = 1e-9
) -> np.ndarray:
    """Squared-exponential covariance matrix over node positions.

    Parameters
    ----------
    positions:
        ``(n, 2)`` array of node coordinates.
    spatial_scale:
        Correlation length; larger values couple distant nodes more tightly.
    jitter:
        Small diagonal term added for numerical stability of the Cholesky
        factorisation.
    """
    positions = np.asarray(positions, dtype=float)
    if positions.ndim != 2 or positions.shape[1] != 2:
        raise ValueError("positions must be an (n, 2) array")
    if spatial_scale <= 0:
        raise ValueError("spatial_scale must be positive")
    diffs = positions[:, None, :] - positions[None, :, :]
    sq_dist = (diffs**2).sum(axis=-1)
    cov = np.exp(-sq_dist / (2.0 * spatial_scale**2))
    cov[np.diag_indices_from(cov)] += jitter
    return cov


def ar1_coefficient(temporal_scale: float) -> float:
    """AR(1) coefficient giving an autocorrelation time of ``temporal_scale`` epochs."""
    if temporal_scale <= 0:
        raise ValueError("temporal_scale must be positive")
    return float(np.exp(-1.0 / temporal_scale))


class PhenomenonField:
    """Generator of one spatio-temporally correlated scalar field.

    Parameters
    ----------
    spec:
        Physical characteristics of the sensor type being simulated.
    positions:
        ``(n, 2)`` node coordinates; column order defines the node order of
        the generated arrays.
    rng:
        NumPy random generator (pass a named stream from
        :class:`~repro.simulation.rng.RandomStreams` for reproducibility).
    epochs_per_day:
        Number of epochs in one simulated day, used for the diurnal cycle.
        The paper's runs are 20 000 epochs; with the default of 2 000 epochs
        per day that is ten simulated days.
    spatial_method:
        ``"exact"`` (default) colours the field through the dense Cholesky
        factor of the RBF covariance -- O(n^2) memory and O(n^3) setup,
        fine up to a few hundred nodes and **unchanged draw-for-draw** from
        the original implementation.  ``"lowrank"`` approximates the same
        kernel with ``num_features`` random Fourier features (Rahimi &
        Recht): O(n m) everywhere, which is what makes 5 000-node datasets
        tractable (the exact path needs ~30 s and hundreds of MB per sensor
        type at that size).  The low-rank field is a statistical
        approximation, not a bit-identical replacement, so it is only ever
        selected explicitly (``ExperimentConfig.phenomena_method``).
    num_features:
        Number of random Fourier features for ``"lowrank"``; kernel error
        shrinks as ``1/sqrt(m)``.
    """

    SPATIAL_METHODS = ("exact", "lowrank")

    def __init__(
        self,
        spec: SensorTypeSpec,
        positions: np.ndarray,
        rng: np.random.Generator,
        epochs_per_day: int = 2000,
        spatial_method: str = "exact",
        num_features: int = 256,
    ):
        if epochs_per_day <= 0:
            raise ValueError("epochs_per_day must be positive")
        if spatial_method not in self.SPATIAL_METHODS:
            raise ValueError(
                f"spatial_method must be one of {self.SPATIAL_METHODS}, "
                f"got {spatial_method!r}"
            )
        if num_features <= 0:
            raise ValueError("num_features must be positive")
        self.spec = spec
        self.positions = np.asarray(positions, dtype=float)
        self.rng = rng
        self.epochs_per_day = int(epochs_per_day)
        self.num_nodes = self.positions.shape[0]
        self.spatial_method = spatial_method
        if spatial_method == "exact":
            cov = spatial_covariance(self.positions, spec.spatial_scale)
            self._chol = np.linalg.cholesky(cov)
            self._features = None
        else:
            if spec.spatial_scale <= 0:
                raise ValueError("spatial_scale must be positive")
            # Random Fourier features for the RBF kernel: spectral density
            # is N(0, 1/scale^2) per axis, and E[2/m sum cos(w.x + b)
            # cos(w.y + b)] = exp(-|x - y|^2 / (2 scale^2)).
            m = int(num_features)
            omega = rng.standard_normal(size=(m, 2)) / spec.spatial_scale
            phase = rng.uniform(0.0, 2.0 * np.pi, size=m)
            self._features = np.sqrt(2.0 / m) * np.cos(
                self.positions @ omega.T + phase[None, :]
            )
            self._chol = None
        # Per-node phase offset so the diurnal peak sweeps across the field.
        self._phase = (
            2.0
            * np.pi
            * (self.positions[:, 0] + self.positions[:, 1])
            / (np.ptp(self.positions) + 1e-9)
            * 0.05
        )

    def generate(self, num_epochs: int) -> np.ndarray:
        """Generate readings for every node over ``num_epochs`` epochs.

        Returns
        -------
        numpy.ndarray
            ``(num_epochs, num_nodes)`` array of field values (including
            measurement noise).
        """
        if num_epochs <= 0:
            raise ValueError("num_epochs must be positive")
        spec = self.spec
        n, t = self.num_nodes, int(num_epochs)

        # Spatially correlated innovations: white noise per epoch, coloured
        # across nodes by the Cholesky factor of the RBF covariance (exact)
        # or projected through the random Fourier features (lowrank).
        if self.spatial_method == "exact":
            white = self.rng.standard_normal(size=(t, n))
            spatial = white @ self._chol.T
        else:
            m = self._features.shape[1]
            white = self.rng.standard_normal(size=(t, m))
            spatial = white @ self._features.T

        # Temporal AR(1) filtering along the epoch axis.  The innovation is
        # scaled by sqrt(1 - rho^2) so the stationary variance equals
        # spec.amplitude ** 2.
        rho = ar1_coefficient(spec.temporal_scale)
        innovations = spatial * spec.amplitude * np.sqrt(1.0 - rho**2)
        stochastic = lfilter([1.0], [1.0, -rho], innovations, axis=0)
        # Start the recursion from the stationary distribution rather than 0
        # so early epochs are statistically identical to late ones.
        if self.spatial_method == "exact":
            initial = (
                self.rng.standard_normal(size=n) @ self._chol.T
            ) * spec.amplitude
        else:
            initial = (
                self.rng.standard_normal(size=self._features.shape[1])
                @ self._features.T
            ) * spec.amplitude
        decay = rho ** np.arange(1, t + 1)[:, None]
        stochastic = stochastic + decay * initial[None, :]

        # Deterministic diurnal cycle, phase-shifted per node.
        epochs = np.arange(t)[:, None]
        diurnal = spec.diurnal_amplitude * np.sin(
            2.0 * np.pi * epochs / self.epochs_per_day + self._phase[None, :]
        )

        noise = (
            self.rng.standard_normal(size=(t, n)) * spec.noise_std
            if spec.noise_std > 0
            else 0.0
        )
        return spec.base_value + diurnal + stochastic + noise


def generate_fields(
    specs: Dict[str, SensorTypeSpec],
    positions: np.ndarray,
    num_epochs: int,
    rng_for: Optional[Dict[str, np.random.Generator]] = None,
    rng: Optional[np.random.Generator] = None,
    epochs_per_day: int = 2000,
    spatial_method: str = "exact",
    num_features: int = 256,
) -> Dict[str, np.ndarray]:
    """Generate one field per sensor type.

    Either ``rng_for`` (a mapping type -> generator) or a single ``rng``
    shared by all types must be provided.  ``spatial_method`` /
    ``num_features`` select the spatial-colouring strategy (see
    :class:`PhenomenonField`).
    """
    if rng_for is None and rng is None:
        raise ValueError("either rng_for or rng must be provided")
    out: Dict[str, np.ndarray] = {}
    for name, spec in specs.items():
        gen = rng_for[name] if rng_for is not None else rng
        field = PhenomenonField(
            spec,
            positions,
            rng=gen,
            epochs_per_day=epochs_per_day,
            spatial_method=spatial_method,
            num_features=num_features,
        )
        out[name] = field.generate(num_epochs)
    return out


def empirical_spatial_correlation(
    readings: np.ndarray, positions: np.ndarray, near_threshold: float
) -> tuple[float, float]:
    """Mean pairwise correlation for near vs far node pairs.

    A diagnostic used by the tests to confirm the generated dataset has the
    property the paper relies on ("sensor values of nodes located close to
    one another are spatially related"): nearby nodes should be more
    correlated than distant ones.

    Returns
    -------
    (near_corr, far_corr):
        Mean Pearson correlation over node pairs closer than
        ``near_threshold`` and at least ``near_threshold`` apart,
        respectively.  ``nan`` is returned for an empty group.
    """
    readings = np.asarray(readings, dtype=float)
    positions = np.asarray(positions, dtype=float)
    corr = np.corrcoef(readings.T)
    diffs = positions[:, None, :] - positions[None, :, :]
    dist = np.sqrt((diffs**2).sum(axis=-1))
    n = corr.shape[0]
    iu = np.triu_indices(n, k=1)
    near_mask = dist[iu] < near_threshold
    near = corr[iu][near_mask]
    far = corr[iu][~near_mask]
    near_corr = float(np.mean(near)) if near.size else float("nan")
    far_corr = float(np.mean(far)) if far.size else float("nan")
    return near_corr, far_corr
