"""Sensor type definitions.

The paper's synthetic dataset has four sensor types; environmental nodes
typically carry temperature, relative humidity, light and barometric
pressure sensors, so those are the defaults here.  Sensor types are plain
strings (not an enum) so that *new* types can be introduced after deployment
-- one of DirQ's explicit design goals ("a user is not required to have
prior information about all the types of sensors that may be added to the
network after the initial deployment", §1).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Tuple

TEMPERATURE = "temperature"
HUMIDITY = "humidity"
LIGHT = "light"
PRESSURE = "pressure"

DEFAULT_SENSOR_TYPES: Tuple[str, str, str, str] = (
    TEMPERATURE,
    HUMIDITY,
    LIGHT,
    PRESSURE,
)
"""The paper's four synthetic sensor types."""


@dataclasses.dataclass(frozen=True)
class SensorTypeSpec:
    """Physical characteristics of one sensor type.

    Attributes
    ----------
    name:
        Sensor type identifier (free-form string).
    unit:
        Unit of measurement, for reporting only.
    base_value:
        Long-run mean of the measured field.
    spatial_scale:
        Correlation length (metres) of the field across the deployment area;
        larger values mean readings at nearby nodes are more similar.
    temporal_scale:
        Correlation time (epochs) of the field; larger values mean slower
        variation.
    amplitude:
        Standard deviation of the stochastic component of the field.
    diurnal_amplitude:
        Amplitude of the deterministic daily cycle (0 to disable).
    noise_std:
        Per-sample measurement noise added on top of the underlying field.
    full_scale:
        Nominal dynamic range of the phenomenon (max - min a deployment is
        expected to observe).  DirQ's percentage thresholds (δ = 3 %, 5 %,
        9 %...) are expressed relative to this value, so it fixes the meaning
        of "δ percent" independently of how long a particular run happens to
        be.  ``None`` lets the experiment runner fall back to the empirical
        range of the generated dataset.
    """

    name: str
    unit: str = ""
    base_value: float = 0.0
    spatial_scale: float = 30.0
    temporal_scale: float = 200.0
    amplitude: float = 1.0
    diurnal_amplitude: float = 0.0
    noise_std: float = 0.0
    full_scale: float | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("sensor type name must be non-empty")
        if self.spatial_scale <= 0 or self.temporal_scale <= 0:
            raise ValueError("spatial_scale and temporal_scale must be positive")
        if self.amplitude < 0 or self.noise_std < 0 or self.diurnal_amplitude < 0:
            raise ValueError("amplitudes and noise must be non-negative")
        if self.full_scale is not None and self.full_scale <= 0:
            raise ValueError("full_scale must be positive when given")


def default_type_specs() -> Dict[str, SensorTypeSpec]:
    """Specs for the four default sensor types.

    Values are chosen to look like a temperate outdoor deployment (the
    paper's forest-monitoring scenario): temperature around 20 °C with a
    visible diurnal swing, humidity around 60 %, light with a strong daily
    cycle, pressure slowly drifting around 1013 hPa.
    """
    return {
        TEMPERATURE: SensorTypeSpec(
            name=TEMPERATURE,
            unit="degC",
            base_value=20.0,
            spatial_scale=18.0,
            temporal_scale=700.0,
            amplitude=2.5,
            diurnal_amplitude=1.0,
            noise_std=0.05,
            full_scale=15.0,
        ),
        HUMIDITY: SensorTypeSpec(
            name=HUMIDITY,
            unit="%RH",
            base_value=60.0,
            spatial_scale=20.0,
            temporal_scale=800.0,
            amplitude=6.0,
            diurnal_amplitude=2.0,
            noise_std=0.2,
            full_scale=35.0,
        ),
        LIGHT: SensorTypeSpec(
            name=LIGHT,
            unit="lux",
            base_value=500.0,
            spatial_scale=15.0,
            temporal_scale=400.0,
            amplitude=100.0,
            diurnal_amplitude=60.0,
            noise_std=5.0,
            full_scale=600.0,
        ),
        PRESSURE: SensorTypeSpec(
            name=PRESSURE,
            unit="hPa",
            base_value=1013.0,
            spatial_scale=40.0,
            temporal_scale=1200.0,
            amplitude=3.0,
            diurnal_amplitude=0.5,
            noise_std=0.05,
            full_scale=18.0,
        ),
    }
