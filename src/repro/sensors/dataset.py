"""Sensor dataset container.

The :class:`SensorDataset` is the ground truth of an experiment: for every
sensor type it stores a full ``(epochs, nodes)`` matrix of readings.  The
simulation's sensors sample from it (so DirQ's view of the world is exactly
this data) and the metrics layer evaluates query relevance against it (so
accuracy/overshoot are measured against the true relevant set).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..network.addresses import NodeId
from .phenomena import generate_fields
from .types import DEFAULT_SENSOR_TYPES, SensorTypeSpec, default_type_specs


class SensorDataset:
    """Ground-truth readings for every node, sensor type, and epoch.

    Parameters
    ----------
    node_ids:
        Node identifiers, in the column order of the reading matrices.
    readings:
        Mapping sensor type -> ``(num_epochs, len(node_ids))`` array.
    specs:
        Optional mapping of sensor type -> :class:`SensorTypeSpec` used to
        generate the data (kept for reporting).
    """

    def __init__(
        self,
        node_ids: Sequence[NodeId],
        readings: Dict[str, np.ndarray],
        specs: Optional[Dict[str, SensorTypeSpec]] = None,
    ):
        self.node_ids: List[NodeId] = list(node_ids)
        if len(set(self.node_ids)) != len(self.node_ids):
            raise ValueError("node_ids contains duplicates")
        self._index = {nid: i for i, nid in enumerate(self.node_ids)}
        self.readings: Dict[str, np.ndarray] = {}
        self.specs = dict(specs) if specs is not None else {}
        num_epochs: Optional[int] = None
        for stype, arr in readings.items():
            arr = np.asarray(arr, dtype=float)
            if arr.ndim != 2 or arr.shape[1] != len(self.node_ids):
                raise ValueError(
                    f"readings[{stype!r}] must have shape (epochs, {len(self.node_ids)})"
                )
            if num_epochs is None:
                num_epochs = arr.shape[0]
            elif arr.shape[0] != num_epochs:
                raise ValueError("all sensor types must cover the same epochs")
            self.readings[stype] = arr
        if num_epochs is None:
            raise ValueError("dataset must contain at least one sensor type")
        self.num_epochs = int(num_epochs)

    # -- constructors -----------------------------------------------------------

    @classmethod
    def generate(
        cls,
        node_ids: Sequence[NodeId],
        positions: np.ndarray,
        num_epochs: int,
        rng: np.random.Generator,
        specs: Optional[Dict[str, SensorTypeSpec]] = None,
        epochs_per_day: int = 2000,
        spatial_method: str = "exact",
    ) -> "SensorDataset":
        """Generate the paper's synthetic dataset.

        Produces one spatio-temporally correlated field per sensor type in
        ``specs`` (the four defaults when omitted) over ``num_epochs`` epochs
        for the given node positions.  ``spatial_method`` selects the
        spatial-colouring strategy -- ``"exact"`` (the paper's dense
        Gaussian field, unchanged draw-for-draw) or ``"lowrank"`` (the
        random-Fourier-feature approximation needed at thousands of nodes);
        see :class:`~repro.sensors.phenomena.PhenomenonField`.
        """
        if specs is None:
            specs = default_type_specs()
        readings = generate_fields(
            specs,
            np.asarray(positions, dtype=float),
            num_epochs,
            rng=rng,
            epochs_per_day=epochs_per_day,
            spatial_method=spatial_method,
        )
        return cls(node_ids=node_ids, readings=readings, specs=specs)

    # -- access --------------------------------------------------------------------

    @property
    def sensor_types(self) -> List[str]:
        """Sorted sensor types present in the dataset."""
        return sorted(self.readings)

    @property
    def num_nodes(self) -> int:
        return len(self.node_ids)

    def has_type(self, sensor_type: str) -> bool:
        return sensor_type in self.readings

    def column_of(self, node_id: NodeId) -> int:
        """Column index of ``node_id`` in the reading matrices."""
        if node_id not in self._index:
            raise KeyError(f"node {node_id} not in dataset")
        return self._index[node_id]

    def reading(self, sensor_type: str, node_id: NodeId, epoch: int) -> float:
        """Ground-truth reading of one node at one epoch."""
        self._check_epoch(epoch)
        return float(self.readings[sensor_type][epoch, self.column_of(node_id)])

    def epoch_slice(self, sensor_type: str, epoch: int) -> np.ndarray:
        """Readings of every node (dataset column order) at one epoch."""
        self._check_epoch(epoch)
        return self.readings[sensor_type][epoch]

    def node_series(self, sensor_type: str, node_id: NodeId) -> np.ndarray:
        """Full time series of one node for one sensor type."""
        return self.readings[sensor_type][:, self.column_of(node_id)]

    def value_range(self, sensor_type: str) -> tuple[float, float]:
        """(min, max) over all nodes and epochs for one sensor type."""
        arr = self.readings[sensor_type]
        return float(arr.min()), float(arr.max())

    def rate_of_change(self, sensor_type: str) -> np.ndarray:
        """Mean absolute per-epoch change for every node (dataset order).

        This is the per-node "rate of variation of the measured physical
        parameter" that the ATC mechanism conditions on.
        """
        arr = self.readings[sensor_type]
        if arr.shape[0] < 2:
            return np.zeros(arr.shape[1])
        return np.abs(np.diff(arr, axis=0)).mean(axis=0)

    def matching_nodes(
        self, sensor_type: str, epoch: int, low: float, high: float
    ) -> List[NodeId]:
        """Nodes whose ground-truth reading at ``epoch`` lies within [low, high].

        This defines the true *source nodes* for a range query and is the
        reference the accuracy metric compares DirQ's routing against.
        """
        self._check_epoch(epoch)
        if low > high:
            raise ValueError("low must not exceed high")
        values = self.readings[sensor_type][epoch]
        mask = (values >= low) & (values <= high)
        return [self.node_ids[i] for i in np.nonzero(mask)[0]]

    def restrict_types(self, sensor_types: Sequence[str]) -> "SensorDataset":
        """Copy of the dataset containing only the requested sensor types."""
        missing = [t for t in sensor_types if t not in self.readings]
        if missing:
            raise KeyError(f"dataset lacks sensor types {missing}")
        return SensorDataset(
            node_ids=self.node_ids,
            readings={t: self.readings[t] for t in sensor_types},
            specs={t: self.specs[t] for t in sensor_types if t in self.specs},
        )

    def _check_epoch(self, epoch: int) -> None:
        if not (0 <= epoch < self.num_epochs):
            raise IndexError(
                f"epoch {epoch} out of range [0, {self.num_epochs})"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SensorDataset(nodes={self.num_nodes}, epochs={self.num_epochs}, "
            f"types={self.sensor_types})"
        )
