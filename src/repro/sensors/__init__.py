"""Sensing substrate: sensor types, synthetic phenomena, datasets, sensors."""

from .dataset import SensorDataset
from .phenomena import (
    PhenomenonField,
    ar1_coefficient,
    empirical_spatial_correlation,
    generate_fields,
    spatial_covariance,
)
from .sensor import SamplingCounter, Sensor
from .types import (
    DEFAULT_SENSOR_TYPES,
    HUMIDITY,
    LIGHT,
    PRESSURE,
    TEMPERATURE,
    SensorTypeSpec,
    default_type_specs,
)

__all__ = [
    "SensorDataset",
    "PhenomenonField",
    "ar1_coefficient",
    "empirical_spatial_correlation",
    "generate_fields",
    "spatial_covariance",
    "SamplingCounter",
    "Sensor",
    "DEFAULT_SENSOR_TYPES",
    "TEMPERATURE",
    "HUMIDITY",
    "LIGHT",
    "PRESSURE",
    "SensorTypeSpec",
    "default_type_specs",
]
