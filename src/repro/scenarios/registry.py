"""The scenario registry: one vocabulary of named scenarios for everything.

Figures, benchmarks, CI jobs, and the ``python -m repro.scenarios.run``
CLI all refer to scenarios by name (``churn-heavy``, ``mobile-40``,
``diurnal-60``, ...); the registry maps each name to a factory producing a
fully-specified :class:`~repro.experiments.config.ExperimentConfig` (and,
via :func:`scenario_spec`, a cache-keyed
:class:`~repro.experiments.batch.TrialSpec`).

Every factory takes ``(num_epochs, seed)`` so the same scenario scales from
a seconds-long CI smoke run to a paper-length campaign; scenario parameters
that are naturally proportional to the run (burst spacing, churn window,
energy budgets) are derived from ``num_epochs`` inside the factory, which
keeps the *shape* of the dynamics stable across lengths.  All scenario
parameters live in the returned config, so they enter ``config_hash`` and
two different scenarios can never share a cache entry.

The static ``static-paper`` entry is the §7 network itself
(:func:`repro.scenarios.static.paper_network`) -- the registry is the
canonical home of that definition, and ``repro.experiments.scenarios``
re-exports it from here.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List

from ..experiments.batch import TrialSpec
from ..experiments.config import ExperimentConfig
from .spec import (
    ChurnConfig,
    EnergyConfig,
    MobilityConfig,
    ScenarioConfig,
    TrafficConfig,
)
from .static import paper_network, scaled_network

#: Default epochs per scenario trial for the CLI and smoke jobs (the
#: factories accept any length; the paper campaign uses 20 000).
DEFAULT_SCENARIO_EPOCHS = 400

ScenarioFactory = Callable[[int, int], ExperimentConfig]


@dataclasses.dataclass(frozen=True)
class ScenarioDef:
    """One registered scenario: a name, its category, and a config factory."""

    name: str
    kind: str  # "static", "churn", "mobility", "traffic", "energy", "mixed"
    description: str
    factory: ScenarioFactory

    KINDS = ("static", "churn", "mobility", "traffic", "energy", "mixed")


_REGISTRY: Dict[str, ScenarioDef] = {}


def register_scenario(name: str, kind: str, description: str):
    """Decorator registering ``factory(num_epochs, seed) -> ExperimentConfig``."""
    if kind not in ScenarioDef.KINDS:
        raise ValueError(f"kind must be one of {ScenarioDef.KINDS}, got {kind!r}")

    def decorator(factory: ScenarioFactory) -> ScenarioFactory:
        if name in _REGISTRY:
            raise ValueError(f"scenario {name!r} is already registered")
        _REGISTRY[name] = ScenarioDef(
            name=name, kind=kind, description=description, factory=factory
        )
        return factory

    return decorator


def scenario_names() -> List[str]:
    """All registered scenario names, sorted."""
    return sorted(_REGISTRY)


def scenario_defs() -> List[ScenarioDef]:
    """All registered scenarios, sorted by name."""
    return [_REGISTRY[name] for name in scenario_names()]


def get_scenario(name: str) -> ScenarioDef:
    if name not in _REGISTRY:
        raise KeyError(
            f"unknown scenario {name!r}; registered: {', '.join(scenario_names())}"
        )
    return _REGISTRY[name]


def build_config(
    name: str,
    num_epochs: int = DEFAULT_SCENARIO_EPOCHS,
    seed: int = 1,
) -> ExperimentConfig:
    """Instantiate the named scenario's configuration."""
    return get_scenario(name).factory(num_epochs, seed)


def scenario_spec(
    name: str,
    num_epochs: int = DEFAULT_SCENARIO_EPOCHS,
    seed: int = 1,
    label: str = "",
) -> TrialSpec:
    """A cache-keyed :class:`TrialSpec` for the named scenario."""
    definition = get_scenario(name)
    return TrialSpec(
        label=label or name,
        config=definition.factory(num_epochs, seed),
        group="scenario",
        tags={"scenario": name, "scenario_kind": definition.kind},
    )


def scenario_sweep(
    names: List[str],
    num_epochs: int = DEFAULT_SCENARIO_EPOCHS,
    seed: int = 1,
) -> List[TrialSpec]:
    """One spec per named scenario (shared epochs/seed)."""
    return [scenario_spec(name, num_epochs=num_epochs, seed=seed) for name in names]


# ---------------------------------------------------------------------------
# The catalogue
# ---------------------------------------------------------------------------


@register_scenario(
    "static-paper",
    "static",
    "the paper's §7 network, unchanged: 50 nodes, query every 20 epochs",
)
def _static_paper(num_epochs: int, seed: int) -> ExperimentConfig:
    return paper_network(num_epochs=num_epochs, seed=seed)


@register_scenario(
    "churn-heavy",
    "churn",
    "aggressive Poisson node deaths (no recovery) starting after warm-up",
)
def _churn_heavy(num_epochs: int, seed: int) -> ExperimentConfig:
    cfg = paper_network(num_epochs=num_epochs, seed=seed)
    return cfg.replace(
        scenario=ScenarioConfig(
            name="churn-heavy",
            churn=ChurnConfig(
                death_rate=8.0 / max(1, num_epochs),
                start_epoch=num_epochs // 5,
                max_deaths=12,
            ),
        )
    )


@register_scenario(
    "churn-revive",
    "churn",
    "moderate churn where dead nodes reboot (battery swaps) after a delay",
)
def _churn_revive(num_epochs: int, seed: int) -> ExperimentConfig:
    cfg = paper_network(num_epochs=num_epochs, seed=seed)
    return cfg.replace(
        scenario=ScenarioConfig(
            name="churn-revive",
            churn=ChurnConfig(
                death_rate=10.0 / max(1, num_epochs),
                start_epoch=num_epochs // 5,
                revive_after=max(20, num_epochs // 8),
                max_deaths=20,
            ),
        )
    )


@register_scenario(
    "mobile-40",
    "mobility",
    "40 % of the nodes drift (random waypoint), re-linking periodically",
)
def _mobile_40(num_epochs: int, seed: int) -> ExperimentConfig:
    cfg = paper_network(num_epochs=num_epochs, seed=seed)
    return cfg.replace(
        scenario=ScenarioConfig(
            name="mobile-40",
            mobility=MobilityConfig(
                mobile_fraction=0.4,
                speed_min=0.2,
                speed_max=1.0,
                relink_period=max(10, num_epochs // 20),
            ),
        )
    )


@register_scenario(
    "mobile-all",
    "mobility",
    "every non-root node drifts slowly; stress test for tree re-linking",
)
def _mobile_all(num_epochs: int, seed: int) -> ExperimentConfig:
    cfg = paper_network(num_epochs=num_epochs, seed=seed)
    return cfg.replace(
        scenario=ScenarioConfig(
            name="mobile-all",
            mobility=MobilityConfig(
                mobile_fraction=1.0,
                speed_min=0.1,
                speed_max=0.5,
                relink_period=max(10, num_epochs // 20),
            ),
        )
    )


@register_scenario(
    "bursty-20",
    "traffic",
    "query bursts over a sparse background load, 20 % target coverage",
)
def _bursty_20(num_epochs: int, seed: int) -> ExperimentConfig:
    cfg = paper_network(num_epochs=num_epochs, seed=seed, target_coverage=0.2)
    return cfg.replace(
        scenario=ScenarioConfig(
            name="bursty-20",
            traffic=TrafficConfig(
                mode="bursty",
                burst_every=max(20, num_epochs // 8),
                queries_per_burst=6,
                background_period=40,
            ),
        )
    )


@register_scenario(
    "diurnal-60",
    "traffic",
    "Poisson load following the daily cycle, 60 % target coverage",
)
def _diurnal_60(num_epochs: int, seed: int) -> ExperimentConfig:
    cfg = paper_network(num_epochs=num_epochs, seed=seed, target_coverage=0.6)
    return cfg.replace(
        scenario=ScenarioConfig(
            name="diurnal-60",
            traffic=TrafficConfig(
                mode="diurnal",
                mean_rate=0.05,
                peak_to_trough=4.0,
            ),
        )
    )


@register_scenario(
    "ramp-load",
    "traffic",
    "deterministic load ramp: query period tightens from 60 to 10 epochs",
)
def _ramp_load(num_epochs: int, seed: int) -> ExperimentConfig:
    cfg = paper_network(num_epochs=num_epochs, seed=seed)
    return cfg.replace(
        scenario=ScenarioConfig(
            name="ramp-load",
            traffic=TrafficConfig(mode="ramp", period_start=60, period_end=10),
        )
    )


@register_scenario(
    "energy-tiered",
    "energy",
    "two-tier battery budgets: a quarter of the nodes run out mid-run",
)
def _energy_tiered(num_epochs: int, seed: int) -> ExperimentConfig:
    cfg = paper_network(num_epochs=num_epochs, seed=seed)
    return cfg.replace(
        scenario=ScenarioConfig(
            name="energy-tiered",
            energy=EnergyConfig(
                distribution="two_tier",
                capacity_low=0.6 * num_epochs,
                capacity_high=50.0 * num_epochs,
                fraction_low=0.25,
                check_period=5,
            ),
        )
    )


@register_scenario(
    "energy-lognormal",
    "energy",
    "lognormal battery budgets: a heavy tail of under-provisioned nodes",
)
def _energy_lognormal(num_epochs: int, seed: int) -> ExperimentConfig:
    cfg = paper_network(num_epochs=num_epochs, seed=seed)
    return cfg.replace(
        scenario=ScenarioConfig(
            name="energy-lognormal",
            energy=EnergyConfig(
                distribution="lognormal",
                median_capacity=8.0 * num_epochs,
                sigma=1.2,
                check_period=5,
            ),
        )
    )


@register_scenario(
    "area-blast",
    "churn",
    "correlated area failure: every node in a sampled disc dies at once",
)
def _area_blast(num_epochs: int, seed: int) -> ExperimentConfig:
    cfg = paper_network(num_epochs=num_epochs, seed=seed)
    return cfg.replace(
        scenario=ScenarioConfig(
            name="area-blast",
            churn=ChurnConfig(
                death_rate=0.0,
                area_epoch=max(1, num_epochs // 3),
                area_radius=30.0,
            ),
        )
    )


@register_scenario(
    "area-blast-revive",
    "churn",
    "area failure whose victims revive one by one (staggered repair crew)",
)
def _area_blast_revive(num_epochs: int, seed: int) -> ExperimentConfig:
    cfg = paper_network(num_epochs=num_epochs, seed=seed)
    return cfg.replace(
        scenario=ScenarioConfig(
            name="area-blast-revive",
            churn=ChurnConfig(
                death_rate=0.0,
                area_epoch=max(1, num_epochs // 3),
                area_radius=30.0,
                area_revive_after=max(10, num_epochs // 8),
                area_revive_stagger=max(1, num_epochs // 80),
            ),
        )
    )


@register_scenario(
    "group-mobile",
    "mobility",
    "reference-point group mobility: heads roam, members jitter around them",
)
def _group_mobile(num_epochs: int, seed: int) -> ExperimentConfig:
    cfg = paper_network(num_epochs=num_epochs, seed=seed)
    return cfg.replace(
        scenario=ScenarioConfig(
            name="group-mobile",
            mobility=MobilityConfig(
                mode="group",
                num_groups=4,
                group_jitter=8.0,
                mobile_fraction=0.8,
                speed_min=0.2,
                speed_max=1.0,
                relink_period=max(10, num_epochs // 20),
            ),
        )
    )


@register_scenario(
    "scale-500",
    "static",
    "density-preserving 500-node static network (the large-N baseline)",
)
def _scale_500(num_epochs: int, seed: int) -> ExperimentConfig:
    return scaled_network(500, num_epochs=num_epochs, seed=seed)


@register_scenario(
    "scale-500-mobile",
    "mobility",
    "500 nodes with 30 % random-waypoint drift; re-link-heavy at scale",
)
def _scale_500_mobile(num_epochs: int, seed: int) -> ExperimentConfig:
    cfg = scaled_network(500, num_epochs=num_epochs, seed=seed)
    return cfg.replace(
        scenario=ScenarioConfig(
            name="scale-500-mobile",
            mobility=MobilityConfig(
                mobile_fraction=0.3,
                speed_min=0.2,
                speed_max=1.0,
                relink_period=max(2, num_epochs // 50),
            ),
        )
    )


@register_scenario(
    "scale-500-churn",
    "churn",
    "500 nodes under Poisson churn with staggered revivals",
)
def _scale_500_churn(num_epochs: int, seed: int) -> ExperimentConfig:
    cfg = scaled_network(500, num_epochs=num_epochs, seed=seed)
    return cfg.replace(
        scenario=ScenarioConfig(
            name="scale-500-churn",
            churn=ChurnConfig(
                death_rate=20.0 / max(1, num_epochs),
                start_epoch=num_epochs // 5,
                revive_after=max(20, num_epochs // 8),
                max_deaths=40,
            ),
        )
    )


@register_scenario(
    "scale-5000",
    "static",
    "5 000-node static network; low-rank phenomena (exact field intractable)",
)
def _scale_5000(num_epochs: int, seed: int) -> ExperimentConfig:
    return scaled_network(
        5000, num_epochs=num_epochs, seed=seed, phenomena_method="lowrank"
    )


@register_scenario(
    "harsh-grid",
    "mixed",
    "area blast + staggered revival + group mobility + bursty load",
)
def _harsh_grid(num_epochs: int, seed: int) -> ExperimentConfig:
    cfg = paper_network(num_epochs=num_epochs, seed=seed, target_coverage=0.2)
    return cfg.replace(
        scenario=ScenarioConfig(
            name="harsh-grid",
            churn=ChurnConfig(
                death_rate=2.0 / max(1, num_epochs),
                start_epoch=num_epochs // 4,
                max_deaths=4,
                area_epoch=max(1, num_epochs // 2),
                area_radius=25.0,
                area_revive_after=max(10, num_epochs // 6),
                area_revive_stagger=max(1, num_epochs // 80),
            ),
            mobility=MobilityConfig(
                mode="group",
                num_groups=3,
                group_jitter=6.0,
                mobile_fraction=0.5,
                speed_min=0.1,
                speed_max=0.5,
                relink_period=max(20, num_epochs // 10),
            ),
            traffic=TrafficConfig(
                mode="bursty",
                burst_every=max(25, num_epochs // 6),
                queries_per_burst=4,
                background_period=50,
            ),
        )
    )


@register_scenario(
    "harsh-mixed",
    "mixed",
    "churn + partial mobility + bursty load + tiered energy, all at once",
)
def _harsh_mixed(num_epochs: int, seed: int) -> ExperimentConfig:
    cfg = paper_network(num_epochs=num_epochs, seed=seed, target_coverage=0.2)
    return cfg.replace(
        scenario=ScenarioConfig(
            name="harsh-mixed",
            churn=ChurnConfig(
                death_rate=4.0 / max(1, num_epochs),
                start_epoch=num_epochs // 4,
                max_deaths=6,
            ),
            mobility=MobilityConfig(
                mobile_fraction=0.3,
                speed_min=0.1,
                speed_max=0.6,
                relink_period=max(20, num_epochs // 10),
            ),
            traffic=TrafficConfig(
                mode="bursty",
                burst_every=max(25, num_epochs // 6),
                queries_per_burst=4,
                background_period=50,
            ),
            energy=EnergyConfig(
                distribution="two_tier",
                capacity_low=0.8 * num_epochs,
                capacity_high=50.0 * num_epochs,
                fraction_low=0.15,
                check_period=5,
            ),
        )
    )
