"""Canonical static experiment configurations (the paper's networks).

This module is the **single definition** of "the §7 network" and its
smaller test/benchmark variants.  It used to live in
``repro.experiments.scenarios``; that module now lazily re-exports
everything from here so existing imports keep working while figures,
benchmarks, the scenario registry and CI all build on one definition.

(Deliberately import-light: only the experiment config/batch layers are
touched, and only after they are fully importable -- see the package
``__init__`` for the lazy-loading contract.)
"""

from __future__ import annotations

import math
from typing import List, Optional

from ..core.config import DirQConfig
from ..network.addresses import NodeId
from ..experiments.batch import TrialSpec
from ..experiments.config import ExperimentConfig, TopologyEvent


def paper_network(
    num_epochs: int = 20_000,
    target_coverage: float = 0.4,
    seed: int = 1,
    query_sensor_type: Optional[str] = "temperature",
    epochs_per_hour: int = 500,
) -> ExperimentConfig:
    """The §7 evaluation network: 50 nodes, one root, 4 sensor types.

    Queries are restricted to a single sensor type by default (as in the
    paper's per-figure experiments); pass ``query_sensor_type=None`` to
    draw the queried attribute uniformly at random instead.
    """
    return ExperimentConfig(
        num_nodes=50,
        num_epochs=num_epochs,
        query_period=20,
        target_coverage=target_coverage,
        query_sensor_type=query_sensor_type,
        seed=seed,
        dirq=DirQConfig(epochs_per_hour=epochs_per_hour),
    )


def small_network(
    num_nodes: int = 16,
    num_epochs: int = 400,
    target_coverage: float = 0.4,
    seed: int = 7,
) -> ExperimentConfig:
    """A small, fast network used by tests and the quickstart example."""
    return ExperimentConfig(
        num_nodes=num_nodes,
        num_epochs=num_epochs,
        comm_range=35.0,
        target_coverage=target_coverage,
        query_sensor_type="temperature",
        seed=seed,
        dirq=DirQConfig(epochs_per_hour=200),
    )


def scaled_network(
    num_nodes: int,
    num_epochs: int = 200,
    seed: int = 1,
    target_coverage: float = 0.2,
    phenomena_method: Optional[str] = None,
) -> ExperimentConfig:
    """A density-preserving enlargement of the paper's network.

    The deployment area grows as ``100 * sqrt(n / 50)``, keeping the
    paper's node density (average degree ~14 at ``comm_range=30``) so the
    protocol behaviour stays comparable while the network axis scales: at
    5 000 nodes the field is ~1 km on a side.  Coverage is lowered to 20 %
    so a query still names a region, not most of the network.

    Pass ``phenomena_method="lowrank"`` above ~1 000 nodes: the exact dense
    Gaussian field needs O(n^2) memory and O(n^3) setup per sensor type,
    which is the remaining scalability wall once connectivity and tree
    maintenance are incremental.
    """
    if num_nodes < 2:
        raise ValueError("num_nodes must be >= 2")
    area = 100.0 * math.sqrt(num_nodes / 50.0)
    return ExperimentConfig(
        num_nodes=num_nodes,
        num_epochs=num_epochs,
        comm_range=30.0,
        area_size=area,
        query_period=20,
        target_coverage=target_coverage,
        query_sensor_type="temperature",
        seed=seed,
        dirq=DirQConfig(epochs_per_hour=200),
        phenomena_method=phenomena_method,
    )


def node_failure_scenario(
    num_epochs: int = 1_200,
    failures: Optional[List[NodeId]] = None,
    failure_epoch: int = 400,
    seed: int = 11,
) -> ExperimentConfig:
    """Topology-dynamics scenario: a batch of nodes dies mid-run.

    Used by the cross-layer adaptation ablation (E7 in DESIGN.md): accuracy
    should recover within a few epochs of the failures because LMAC reports
    the dead neighbours and DirQ prunes / re-advertises its ranges.
    """
    cfg = paper_network(num_epochs=num_epochs, seed=seed)
    dead = failures if failures is not None else [7, 19, 33]
    events = [
        TopologyEvent(epoch=failure_epoch, kind=TopologyEvent.KILL, node_id=nid)
        for nid in dead
        if nid != cfg.root_id
    ]
    return cfg.replace(topology_events=events)


def smoke_sweep(
    num_nodes: int = 12,
    num_epochs: int = 120,
    seed: int = 3,
) -> List[TrialSpec]:
    """A small mixed sweep exercising every protocol mode.

    Used by the CI smoke run (``python -m repro.experiments.smoke``) and by
    tests that need a representative multi-trial batch that finishes in
    seconds: two fixed thresholds, the ATC, and the flooding baseline over
    the same miniature network.
    """
    base = small_network(
        num_nodes=num_nodes, num_epochs=num_epochs, seed=seed
    )
    specs = [
        TrialSpec(
            label=f"smoke delta={delta:g}%",
            config=base.with_fixed_delta(delta),
            group="smoke",
            tags={"delta": delta},
        )
        for delta in (3.0, 9.0)
    ]
    specs.append(
        TrialSpec(label="smoke atc", config=base.with_atc(), group="smoke")
    )
    specs.append(
        TrialSpec(
            label="smoke flooding", config=base.with_flooding(), group="smoke"
        )
    )
    return specs


def heterogeneous_scenario(
    num_epochs: int = 1_000,
    sensors_per_node: int = 2,
    seed: int = 13,
) -> ExperimentConfig:
    """Heterogeneous-network scenario (Fig. 4): random sensor subsets per node."""
    cfg = paper_network(num_epochs=num_epochs, seed=seed, query_sensor_type=None)
    return cfg.replace(sensors_per_node=sensors_per_node)
