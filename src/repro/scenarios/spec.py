"""Declarative scenario descriptions (pure data, no simulation imports).

A :class:`ScenarioConfig` describes the *dynamics* layered on top of an
otherwise static :class:`~repro.experiments.config.ExperimentConfig`: node
churn, node mobility, a time-varying query load, and heterogeneous per-node
energy budgets.  The paper's §7 evaluation is the degenerate case (no
scenario at all); everything here generalises the hand-written
``TopologyEvent`` lists and fixed query period of that setup into named,
composable, hash-stable configuration.

These classes deliberately contain **only data** (frozen dataclasses of
plain scalars) so that

* they canonicalise through :func:`repro.experiments.batch.config_hash`
  exactly like every other config field -- scenario parameters are part of
  a trial's cache identity, and
* this module imports nothing from the experiment layer, which keeps the
  ``repro.scenarios`` <-> ``repro.experiments`` dependency graph acyclic
  (the experiment config embeds a :class:`ScenarioConfig`; the runtime
  models in :mod:`repro.scenarios.models` are experiment-free too).

Hash-compatibility contract: ``ExperimentConfig.scenario`` defaults to
``None`` and is *omitted* from the canonical hash payload when unset, so
every pre-scenario config keeps its original cache key and fingerprint.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Tuple

#: One dynamic topology event produced by a scenario model:
#: ``(epoch, kind, node_id)`` with kind ``"kill"`` or ``"activate"``.
ScenarioEvent = Tuple[int, str, int]

EVENT_KILL = "kill"
EVENT_ACTIVATE = "activate"


@dataclasses.dataclass(frozen=True)
class ChurnConfig:
    """Poisson node deaths with optional scheduled reactivation.

    Attributes
    ----------
    death_rate:
        Expected node deaths per epoch (Poisson intensity).
    start_epoch, end_epoch:
        Half-open epoch window ``[start_epoch, end_epoch)`` in which deaths
        are drawn; ``end_epoch=None`` extends to the end of the run.
    revive_after:
        When set, every killed node is scheduled for reactivation this many
        epochs after its death (modelling battery swaps / reboots).
    max_deaths:
        Cap on the total number of *Poisson* deaths (keeps long runs from
        silently killing the whole network).  An area blast deliberately
        ignores the cap: a correlated failure takes out its whole disc.
    area_epoch, area_radius, area_center:
        Correlated area failure: at ``area_epoch`` every non-root node
        within ``area_radius`` of the blast centre dies at once (lightning
        strike, localised flooding, a stolen cluster).  ``area_center``
        fixes the centre explicitly; when ``None`` the centre is the
        position of a node sampled uniformly from the ``scenario-churn``
        stream, so the disc always hits at least one node and its
        membership is a deterministic function of the seed.  Membership is
        evaluated on the *deployment* positions (mobility later in the run
        does not re-draw the blast).
    area_revive_after, area_revive_stagger:
        Optional staggered revival of the blast victims: the k-th victim
        (in sorted node order) reactivates ``area_revive_after +
        k * area_revive_stagger`` epochs after the blast (a repair crew
        working through the area; stagger ``None`` means all at once).

    The ``area_*`` fields are listed in :data:`HASH_OMIT_WHEN_UNSET`:
    while unset they are dropped from the canonical hash payload, so every
    pre-existing churn config keeps its exact cache key and fingerprint.
    """

    HASH_OMIT_WHEN_UNSET = (
        "area_epoch",
        "area_radius",
        "area_center",
        "area_revive_after",
        "area_revive_stagger",
    )

    death_rate: float = 0.01
    start_epoch: int = 0
    end_epoch: Optional[int] = None
    revive_after: Optional[int] = None
    max_deaths: Optional[int] = None
    area_epoch: Optional[int] = None
    area_radius: Optional[float] = None
    area_center: Optional[Tuple[float, float]] = None
    area_revive_after: Optional[int] = None
    area_revive_stagger: Optional[int] = None

    def __post_init__(self) -> None:
        if self.death_rate < 0:
            raise ValueError("death_rate must be non-negative")
        if self.start_epoch < 0:
            raise ValueError("start_epoch must be non-negative")
        if self.end_epoch is not None and self.end_epoch <= self.start_epoch:
            raise ValueError("end_epoch must be greater than start_epoch")
        if self.revive_after is not None and self.revive_after < 1:
            raise ValueError("revive_after must be >= 1")
        if self.max_deaths is not None and self.max_deaths < 0:
            raise ValueError("max_deaths must be non-negative")
        if (self.area_epoch is None) != (self.area_radius is None):
            raise ValueError(
                "area_epoch and area_radius must be set together"
            )
        if self.area_epoch is not None and self.area_epoch < 0:
            raise ValueError("area_epoch must be non-negative")
        if self.area_radius is not None and self.area_radius <= 0:
            raise ValueError("area_radius must be positive")
        for name in ("area_center", "area_revive_after", "area_revive_stagger"):
            if getattr(self, name) is not None and self.area_epoch is None:
                raise ValueError(f"{name} requires area_epoch/area_radius")
        if self.area_center is not None:
            if len(self.area_center) != 2:
                raise ValueError("area_center must be an (x, y) pair")
            object.__setattr__(
                self, "area_center", tuple(float(c) for c in self.area_center)
            )
        if self.area_revive_after is not None and self.area_revive_after < 1:
            raise ValueError("area_revive_after must be >= 1")
        if self.area_revive_stagger is not None:
            if self.area_revive_after is None:
                raise ValueError("area_revive_stagger requires area_revive_after")
            if self.area_revive_stagger < 0:
                raise ValueError("area_revive_stagger must be non-negative")


@dataclasses.dataclass(frozen=True)
class MobilityConfig:
    """Position drift with epoch-granular re-linking.

    Node positions only change at re-link boundaries (every
    ``relink_period`` epochs).  Two modes:

    ``"waypoint"`` (the default, ``mode=None``)
        Random waypoint: each mobile node advances
        ``speed * relink_period`` metres towards its current waypoint,
        drawing a fresh uniform waypoint whenever one is reached.
    ``"group"``
        Reference-point group mobility: the mobile nodes split into
        ``num_groups`` clusters; each cluster's *head* moves random
        waypoint exactly as above, and every member re-positions uniformly
        within ``group_jitter`` metres of its head at each re-link (a herd,
        a patrol, vehicles in a convoy).  ``mode="group"`` requires both
        ``num_groups`` and ``group_jitter``.

    Connectivity is re-derived from the unit-disk rule after every step and
    the spanning tree is rebuilt deterministically (sorted-neighbour BFS),
    so a mobility trial is a pure function of its seed.

    The ``mode``/``num_groups``/``group_jitter`` fields are listed in
    :data:`HASH_OMIT_WHEN_UNSET`: while unset they are dropped from the
    canonical hash payload, so every pre-existing mobility config keeps
    its exact cache key and fingerprint.
    """

    MODES = ("waypoint", "group")

    HASH_OMIT_WHEN_UNSET = ("mode", "num_groups", "group_jitter")

    speed_min: float = 0.5
    speed_max: float = 1.5
    relink_period: int = 50
    mobile_fraction: float = 1.0
    mode: Optional[str] = None
    num_groups: Optional[int] = None
    group_jitter: Optional[float] = None

    def __post_init__(self) -> None:
        if self.speed_min < 0 or self.speed_max < self.speed_min:
            raise ValueError("need 0 <= speed_min <= speed_max")
        if self.relink_period < 1:
            raise ValueError("relink_period must be >= 1")
        if not (0.0 < self.mobile_fraction <= 1.0):
            raise ValueError("mobile_fraction must be in (0, 1]")
        if self.mode is not None and self.mode not in self.MODES:
            raise ValueError(f"mode must be one of {self.MODES}, got {self.mode!r}")
        if self.mode == "group":
            if self.num_groups is None or self.group_jitter is None:
                raise ValueError(
                    "mode='group' requires num_groups and group_jitter"
                )
        elif self.num_groups is not None or self.group_jitter is not None:
            raise ValueError(
                "num_groups/group_jitter only apply to mode='group'"
            )
        if self.num_groups is not None and self.num_groups < 1:
            raise ValueError("num_groups must be >= 1")
        if self.group_jitter is not None and self.group_jitter <= 0:
            raise ValueError("group_jitter must be positive")


@dataclasses.dataclass(frozen=True)
class TrafficConfig:
    """Time-varying query workload (replaces the fixed ``query_period``).

    Modes
    -----
    ``"bursty"``
        ``queries_per_burst`` queries every ``burst_every`` epochs over an
        optional periodic background load.
    ``"diurnal"``
        Poisson arrivals whose rate follows the config's daily cycle
        (``epochs_per_day``), peak/trough contrast ``peak_to_trough``.
    ``"ramp"``
        Deterministic injections whose period interpolates linearly from
        ``period_start`` at epoch 0 to ``period_end`` at the end of the
        run (a load ramp-up when ``period_end < period_start``).

    ``coverage_start``/``coverage_end`` optionally ramp the per-query
    target coverage linearly across the run (both must be set together).
    """

    MODES = ("bursty", "diurnal", "ramp")

    mode: str = "bursty"
    burst_every: int = 200
    queries_per_burst: int = 6
    background_period: int = 0
    mean_rate: float = 0.05
    peak_to_trough: float = 4.0
    period_start: int = 40
    period_end: int = 10
    coverage_start: Optional[float] = None
    coverage_end: Optional[float] = None

    def __post_init__(self) -> None:
        if self.mode not in self.MODES:
            raise ValueError(f"mode must be one of {self.MODES}, got {self.mode!r}")
        if self.burst_every < 1:
            raise ValueError("burst_every must be >= 1")
        if self.queries_per_burst < 1:
            raise ValueError("queries_per_burst must be >= 1")
        if self.background_period < 0:
            raise ValueError("background_period must be non-negative")
        if self.mean_rate < 0:
            raise ValueError("mean_rate must be non-negative")
        if self.peak_to_trough < 1.0:
            raise ValueError("peak_to_trough must be >= 1.0")
        if self.period_start < 1 or self.period_end < 1:
            raise ValueError("ramp periods must be >= 1")
        if (self.coverage_start is None) != (self.coverage_end is None):
            raise ValueError(
                "coverage_start and coverage_end must be set together"
            )
        for cov in (self.coverage_start, self.coverage_end):
            if cov is not None and not (0.0 < cov <= 1.0):
                raise ValueError("coverage bounds must be in (0, 1]")


@dataclasses.dataclass(frozen=True)
class EnergyConfig:
    """Heterogeneous per-node battery budgets.

    Every non-root node is assigned a finite
    :class:`~repro.energy.battery.Battery` at build time; the runner drains
    each battery by the node's ledger cost and kills the node (exactly like
    a scripted failure) once its budget is exhausted.  The root keeps the
    paper's infinite budget -- the sink is mains-powered.

    Distributions
    -------------
    ``"uniform"``
        Capacity ~ U[``capacity_low``, ``capacity_high``].
    ``"two_tier"``
        A ``fraction_low`` share of nodes gets ``capacity_low``, the rest
        ``capacity_high`` (coin-cell vs. battery-pack deployments).
    ``"lognormal"``
        Capacity ~ ``median_capacity * LogNormal(0, sigma)``.
    """

    DISTRIBUTIONS = ("uniform", "two_tier", "lognormal")

    distribution: str = "uniform"
    capacity_low: float = 200.0
    capacity_high: float = 600.0
    fraction_low: float = 0.25
    median_capacity: float = 400.0
    sigma: float = 0.5
    check_period: int = 1

    def __post_init__(self) -> None:
        if self.distribution not in self.DISTRIBUTIONS:
            raise ValueError(
                f"distribution must be one of {self.DISTRIBUTIONS}, "
                f"got {self.distribution!r}"
            )
        if self.capacity_low <= 0 or self.capacity_high < self.capacity_low:
            raise ValueError("need 0 < capacity_low <= capacity_high")
        if not (0.0 <= self.fraction_low <= 1.0):
            raise ValueError("fraction_low must be in [0, 1]")
        if self.median_capacity <= 0:
            raise ValueError("median_capacity must be positive")
        if self.sigma < 0:
            raise ValueError("sigma must be non-negative")
        if self.check_period < 1:
            raise ValueError("check_period must be >= 1")


@dataclasses.dataclass(frozen=True)
class ScenarioConfig:
    """Composable bundle of dynamic-scenario dimensions.

    Any subset of the four dimensions may be set (at least one must be);
    unset dimensions leave the corresponding static behaviour untouched.
    ``name`` is a display label only -- it is excluded from nothing, but
    two scenarios differing only in ``name`` are different configs and
    hash differently, which is intentional: the registry stamps the
    scenario name so cache entries are self-describing.
    """

    name: str = ""
    churn: Optional[ChurnConfig] = None
    mobility: Optional[MobilityConfig] = None
    traffic: Optional[TrafficConfig] = None
    energy: Optional[EnergyConfig] = None

    def __post_init__(self) -> None:
        if (
            self.churn is None
            and self.mobility is None
            and self.traffic is None
            and self.energy is None
        ):
            raise ValueError(
                "a ScenarioConfig must set at least one of "
                "churn/mobility/traffic/energy (use scenario=None for a "
                "fully static run)"
            )

    @property
    def dimensions(self) -> Tuple[str, ...]:
        """The dynamic dimensions this scenario exercises, in canonical order."""
        out = []
        if self.churn is not None:
            out.append("churn")
        if self.mobility is not None:
            out.append("mobility")
        if self.traffic is not None:
            out.append("traffic")
        if self.energy is not None:
            out.append("energy")
        return tuple(out)
