"""Dynamic-scenario subsystem: named, composable experiment dynamics.

The package turns one-off experiment configs into a library of scenarios:

* :mod:`repro.scenarios.spec` -- frozen config dataclasses
  (:class:`ChurnConfig`, :class:`MobilityConfig`, :class:`TrafficConfig`,
  :class:`EnergyConfig`, bundled by :class:`ScenarioConfig`) embedded in
  :class:`~repro.experiments.config.ExperimentConfig` and hashed into the
  batch cache key;
* :mod:`repro.scenarios.models` -- the runtime models the experiment
  runner drives (Poisson churn timelines, random-waypoint mobility with
  deterministic tree re-linking, bursty/diurnal/ramp traffic profiles,
  heterogeneous battery budgets);
* :mod:`repro.scenarios.static` -- the canonical static networks (the §7
  ``paper_network`` and friends; ``repro.experiments.scenarios`` re-exports
  them from here);
* :mod:`repro.scenarios.registry` -- the name -> config factory catalogue
  (``churn-heavy``, ``mobile-40``, ``diurnal-60``, ...);
* ``python -m repro.scenarios.run`` -- the replicated scenario CLI with
  resilience metrics and deterministic JSON export.

Import-order contract
---------------------
``spec`` and ``models`` import nothing from :mod:`repro.experiments`, so
the experiment layer can embed scenario configs and drive scenario models
without a cycle.  ``static`` and ``registry`` *do* build on the experiment
layer and are therefore loaded lazily (module ``__getattr__``): importing
``repro.scenarios`` from within ``repro.experiments.config`` must not pull
the experiment package back in mid-initialisation.
"""

from __future__ import annotations

from .models import (
    ChurnModel,
    EnergyProfile,
    MobilityModel,
    TrafficProfile,
    rebuild_spanning_tree,
)
from .spec import (
    ChurnConfig,
    EnergyConfig,
    MobilityConfig,
    ScenarioConfig,
    ScenarioEvent,
    TrafficConfig,
)

#: Names resolved lazily from the experiment-dependent submodules.
_LAZY_EXPORTS = {
    "paper_network": "static",
    "small_network": "static",
    "node_failure_scenario": "static",
    "smoke_sweep": "static",
    "heterogeneous_scenario": "static",
    "ScenarioDef": "registry",
    "register_scenario": "registry",
    "scenario_names": "registry",
    "scenario_defs": "registry",
    "get_scenario": "registry",
    "build_config": "registry",
    "scenario_spec": "registry",
    "scenario_sweep": "registry",
    "DEFAULT_SCENARIO_EPOCHS": "registry",
}


def __getattr__(name: str):
    module_name = _LAZY_EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(f".{module_name}", __name__)
    return getattr(module, name)


def __dir__():
    return sorted(list(globals()) + list(_LAZY_EXPORTS))


__all__ = [
    "ChurnConfig",
    "ChurnModel",
    "EnergyConfig",
    "EnergyProfile",
    "MobilityConfig",
    "MobilityModel",
    "ScenarioConfig",
    "ScenarioEvent",
    "TrafficConfig",
    "TrafficProfile",
    "rebuild_spanning_tree",
    *sorted(_LAZY_EXPORTS),
]
