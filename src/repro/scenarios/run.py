"""Replicated dynamic-scenario runs from the command line.

``python -m repro.scenarios.run --scenario churn-heavy --replicates 5``
runs the named scenario (see ``--list`` for the catalogue) with N
independent seeds through a :class:`~repro.experiments.batch.BatchRunner`,
prints the replicate-CI table, and -- unless ``--baseline none`` -- runs
the static baseline alongside and reports the resilience comparison
(per-metric degradation, recovery time after the first scenario-driven
node death).

Mirrors ``python -m repro.experiments.replicate``: replicate 0 of every
point is the base configuration (cached single trials compose for free),
re-runs against the same cache execute zero trials and produce a
bit-identical table and JSON export at any worker count
(``--require-cached`` turns that invariant into an exit code for CI).
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from pathlib import Path
from typing import Optional, Sequence

from ..experiments.batch import BatchRunner, resolve_cache_dir
from ..metrics.report import format_replicate_table, format_table
from ..metrics.resilience import (
    DEFAULT_RECOVERY_TOLERANCE,
    degradation_rows,
    format_degradation_table,
    recovery_summary,
    resilience_to_jsonable,
)
from ..metrics.stats import DEFAULT_CONFIDENCE, groups_to_jsonable
from .registry import DEFAULT_SCENARIO_EPOCHS, scenario_defs, scenario_spec

#: Baseline scenario used for the resilience comparison.
DEFAULT_BASELINE = "static-paper"


def format_catalogue(title: str = "registered scenarios") -> str:
    """The scenario catalogue as a text table (shared with the grid CLI)."""
    rows = [(d.name, d.kind, d.description) for d in scenario_defs()]
    return format_table(
        headers=["scenario", "kind", "description"],
        rows=rows,
        title=title,
    )


def _print_catalogue() -> None:
    print(format_catalogue())


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description=(
            "Run a registered dynamic scenario with N replicates per point "
            "and report resilience vs the static baseline."
        )
    )
    parser.add_argument(
        "--scenario",
        default=None,
        help="registered scenario name (see --list)",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        help="print the scenario catalogue and exit",
    )
    parser.add_argument(
        "--replicates",
        type=int,
        default=5,
        help="independent seeds per scenario (default: 5)",
    )
    parser.add_argument(
        "--epochs",
        type=int,
        default=DEFAULT_SCENARIO_EPOCHS,
        help=(
            f"epochs per trial (default: {DEFAULT_SCENARIO_EPOCHS}; "
            "paper-length: 20000)"
        ),
    )
    parser.add_argument(
        "--seed", type=int, default=1, help="base master seed (default: 1)"
    )
    parser.add_argument(
        "--baseline",
        default=DEFAULT_BASELINE,
        help=(
            "scenario to compare against for the resilience table "
            f"(default: {DEFAULT_BASELINE}; 'none' disables the comparison)"
        ),
    )
    parser.add_argument(
        "--recovery-window",
        type=int,
        default=100,
        help="window (epochs) for the recovery-time metric (default: 100)",
    )
    parser.add_argument(
        "--recovery-tolerance",
        type=float,
        default=DEFAULT_RECOVERY_TOLERANCE,
        help=(
            "accuracy slack for declaring recovery "
            f"(default: {DEFAULT_RECOVERY_TOLERANCE})"
        ),
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes (default: CPU count)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help=(
            "result cache directory (default: $REPRO_CACHE_DIR or "
            ".repro-cache); re-runs are then served entirely from cache"
        ),
    )
    parser.add_argument(
        "--json",
        dest="json_path",
        default=None,
        help="JSON export path (default: scenario-<name>.json)",
    )
    parser.add_argument(
        "--require-cached",
        action="store_true",
        help="exit non-zero unless the sweep executed zero trials (CI check)",
    )
    parser.add_argument(
        "--instrument",
        default=None,
        choices=("metrics", "full"),
        help=(
            "run instrumented (see docs/observability.md); hash-exempt, so "
            "instrumented and plain runs share cache entries and exports"
        ),
    )
    args = parser.parse_args(argv)

    if args.list:
        _print_catalogue()
        return 0
    if args.scenario is None:
        parser.error("--scenario is required (or use --list)")
    if args.replicates < 1:
        parser.error("--replicates must be >= 1")
    if args.recovery_window < 1:
        parser.error("--recovery-window must be >= 1")
    if args.recovery_tolerance < 0:
        parser.error("--recovery-tolerance must be non-negative")

    cache_dir = resolve_cache_dir(args.cache_dir)

    with_baseline = args.baseline != "none" and args.baseline != args.scenario
    try:
        specs = [
            scenario_spec(args.scenario, num_epochs=args.epochs, seed=args.seed)
        ]
        if with_baseline:
            specs.append(
                scenario_spec(args.baseline, num_epochs=args.epochs, seed=args.seed)
            )
    except KeyError as error:
        print(f"error: {error.args[0]}", file=sys.stderr)
        return 2
    if args.instrument:
        specs = [
            dataclasses.replace(
                spec, config=spec.config.replace(instrument=args.instrument)
            )
            for spec in specs
        ]

    runner = BatchRunner(max_workers=args.workers, cache_dir=cache_dir)
    groups = runner.run_replicated(
        specs, n=args.replicates, confidence=DEFAULT_CONFIDENCE
    )
    stats = runner.last_stats
    scenario_group = groups[0]
    baseline_group = groups[1] if with_baseline else None

    print(
        f"scenario sweep: {args.scenario} ({args.epochs} epochs) | "
        f"{len(specs)} points x {args.replicates} replicates = "
        f"{stats.total} trials | executed {stats.executed}, "
        f"cached {stats.cached}, deduplicated {stats.deduplicated} | "
        f"workers {stats.workers} | wall {stats.runtime_seconds:.2f}s"
    )
    print()
    print(
        format_replicate_table(
            groups,
            title=(
                f"{args.scenario}: mean ± {DEFAULT_CONFIDENCE:.0%} CI "
                f"half-width over n={args.replicates} seeds"
            ),
        )
    )

    recovery = recovery_summary(
        scenario_group.results,
        window_epochs=args.recovery_window,
        tolerance=args.recovery_tolerance,
    )
    rows = []
    if baseline_group is not None:
        rows = degradation_rows(scenario_group, baseline_group)
        print()
        print(
            format_degradation_table(
                rows,
                title=(
                    f"resilience: {args.scenario} vs {args.baseline} "
                    "(replicate means)"
                ),
            )
        )
    print()
    if recovery is not None:
        print(
            f"recovery after first disruption: {recovery.format('{:.0f}')} epochs "
            f"(window {args.recovery_window}, tolerance "
            f"{args.recovery_tolerance:g})"
        )
    else:
        print("recovery after first disruption: n/a (no scenario-driven deaths)")

    payload = {
        "scenario": args.scenario,
        "epochs": args.epochs,
        "seed": args.seed,
        "replicates": args.replicates,
        "confidence": DEFAULT_CONFIDENCE,
        "groups": groups_to_jsonable(groups),
        # Recovery is a scenario-only metric, so the resilience payload is
        # always present; without a baseline the degradation list is empty
        # and the baseline label blank.
        "resilience": resilience_to_jsonable(
            rows,
            recovery=recovery,
            baseline_label=args.baseline if baseline_group is not None else "",
        ),
    }
    json_path = Path(args.json_path or f"scenario-{args.scenario}.json")
    json_path.write_text(json.dumps(payload, sort_keys=True, indent=2) + "\n")
    print()
    print(f"JSON export written to {json_path}")

    if args.require_cached and stats.executed != 0:
        print(
            f"FAIL: --require-cached but {stats.executed} trials executed "
            "(expected 0)",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
