"""DirQ: an adaptive directed query dissemination scheme for wireless sensor
networks -- a full Python reproduction of Chatterjea, De Luigi & Havinga
(ICPP Workshops 2006).

The package is organised bottom-up:

* :mod:`repro.simulation` -- deterministic discrete-event kernel (the
  OMNeT++ substitute).
* :mod:`repro.network` -- node placement, unit-disk wireless channel,
  spanning tree.
* :mod:`repro.mac` -- LMAC-style TDMA MAC with cross-layer notifications.
* :mod:`repro.energy` -- the paper's unit-cost energy accounting.
* :mod:`repro.sensors` -- spatio-temporally correlated synthetic phenomena.
* :mod:`repro.workload` -- range-query generation, injection schedules, and
  the root's query-rate predictor.
* :mod:`repro.core` -- **DirQ itself**: Range Tables, Update/Estimate
  messages, directed query routing, Adaptive Threshold Control, the flooding
  baseline, and the §5 analytical cost model.
* :mod:`repro.metrics` -- accuracy/overshoot, cost comparison, windowed
  series.
* :mod:`repro.experiments` -- the harness that reproduces every figure and
  table of the paper's evaluation.

Quickstart::

    from repro.experiments import paper_network, run_experiment

    config = paper_network(num_epochs=2_000).with_atc()
    result = run_experiment(config)
    print(f"DirQ cost / flooding cost = {result.cost_ratio:.2f}")
    print(f"mean overshoot            = {result.mean_overshoot_percent:.1f} pp")
"""

from .core import (
    AdaptiveThresholdController,
    DirQConfig,
    DirQNode,
    DirQRoot,
    EstimateMessage,
    FloodingNode,
    FloodingRoot,
    RangeQuery,
    RangeTable,
    RangeTableSet,
    ThresholdMode,
    UpdateMessage,
    f_max,
    flooding_cost,
    max_query_dissemination_cost,
    max_update_cost,
)
from .experiments import (
    ExperimentConfig,
    ExperimentResult,
    paper_network,
    run_experiment,
    small_network,
)

__version__ = "1.0.0"

__all__ = [
    "AdaptiveThresholdController",
    "DirQConfig",
    "DirQNode",
    "DirQRoot",
    "EstimateMessage",
    "FloodingNode",
    "FloodingRoot",
    "RangeQuery",
    "RangeTable",
    "RangeTableSet",
    "ThresholdMode",
    "UpdateMessage",
    "f_max",
    "flooding_cost",
    "max_query_dissemination_cost",
    "max_update_cost",
    "ExperimentConfig",
    "ExperimentResult",
    "paper_network",
    "run_experiment",
    "small_network",
    "__version__",
]
