"""Shared bootstrap for the repository tools.

Every tool under ``tools/`` needs the same two things before it can import
repository code: the repository root (for locating ``src``, ``docs``,
``benchmarks``) and an import path that resolves ``repro`` (src layout)
and ``benchmarks``/``tools`` (repo root) no matter which directory the
tool is launched from.  Centralising it here keeps the per-tool preamble
to a single :func:`bootstrap` call.
"""

from __future__ import annotations

import sys
from pathlib import Path

#: Absolute path of the repository root (the directory holding ``src``).
REPO_ROOT = Path(__file__).resolve().parent.parent

#: Directory the ``repro`` package is imported from.
SRC_ROOT = REPO_ROOT / "src"


def bootstrap() -> Path:
    """Make ``repro`` (src layout) and repo-root packages importable.

    Idempotent; returns :data:`REPO_ROOT` for convenience so callers can
    write ``root = bootstrap()``.
    """
    for entry in (SRC_ROOT, REPO_ROOT):
        if str(entry) not in sys.path:
            sys.path.insert(0, str(entry))
    return REPO_ROOT
