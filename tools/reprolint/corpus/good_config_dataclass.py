# reprolint-corpus: expect=
"""Known-good: omit-when-unset fields with None defaults, constants.

``tick_method`` mirrors the ExperimentConfig strategy-flag convention:
None-defaulted, listed in HASH_OMIT_WHEN_UNSET, so unset configs keep
their pre-flag cache keys while pinned strategies hash distinctly.
"""
import dataclasses
from typing import Optional


@dataclasses.dataclass(frozen=True)
class SampleConfig:
    HASH_OMIT_WHEN_UNSET = ("mode", "tick_method")
    MODES = ("waypoint", "group")

    rate: float = 0.1
    mode: Optional[str] = None
    tick_method: Optional[str] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "rate", float(self.rate))
