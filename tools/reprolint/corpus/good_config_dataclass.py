# reprolint-corpus: expect=
"""Known-good: omit-when-unset field with a None default, constants."""
import dataclasses
from typing import Optional


@dataclasses.dataclass(frozen=True)
class SampleConfig:
    HASH_OMIT_WHEN_UNSET = ("mode",)
    MODES = ("waypoint", "group")

    rate: float = 0.1
    mode: Optional[str] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "rate", float(self.rate))
