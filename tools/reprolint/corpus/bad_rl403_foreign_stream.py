# reprolint-corpus: expect=RL403
"""Known-bad: requesting another subsystem's stream correlates draws."""


def build(streams):
    return streams.get("topology")
