# reprolint-corpus: expect=RL110
"""Known-bad: set iteration order depends on insertion history."""


def schedule(pending: set):
    for event in pending:
        yield event


def collect(alive):
    dead = {3, 1, 2}
    return [nid for nid in dead]
