# reprolint-corpus: expect=RL504
"""Known-bad: a clock read inside a metric payload poisons comparisons.

``perf_counter`` (not ``time.time``) on purpose: the monotonic clock is
sanctioned for profiling generally (RL102 does not flag it), but never
inside a recorded metric/trace payload.
"""

import time


def observe(metrics):
    metrics.observe("channel.fanout", time.perf_counter())
