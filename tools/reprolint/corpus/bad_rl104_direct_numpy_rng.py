# reprolint-corpus: expect=RL104
"""Known-bad: generators must come from named RandomStreams streams."""
import numpy as np


def fresh():
    return np.random.default_rng()
