# reprolint-corpus: expect=RL402
"""Known-bad: every stream name must be in STREAM_REGISTRY."""


def build(streams):
    return streams.get("corpus-unregistered-stream")
