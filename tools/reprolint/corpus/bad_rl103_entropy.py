# reprolint-corpus: expect=RL103
"""Known-bad: OS entropy is unseedable."""
import os
import uuid


def fresh_id() -> str:
    return str(uuid.uuid4()) + os.urandom(4).hex()
