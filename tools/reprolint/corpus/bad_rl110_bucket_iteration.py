# reprolint-corpus: expect=RL110
"""Known-bad: bucket tables (dicts of sets) iterated in hash/raw order.

The spatial-hash contract drains buckets in sorted cell order and yields
sorted members; every loop below leaks insertion or hash order instead.
"""
from collections import defaultdict
from typing import Dict, Set, Tuple

Cell = Tuple[int, int]


class Grid:
    def __init__(self):
        self._buckets: Dict[Cell, Set[int]] = {}

    def drain(self):
        for cell in self._buckets:  # raw key order, not sorted cells
            yield cell

    def members(self, cell: Cell):
        return [nid for nid in self._buckets[cell]]  # set order


def collide(buckets: Dict[Cell, Set[int]]):
    hits = []
    for cell, members in buckets.items():  # raw key order
        for nid in members:
            hits.append((cell, nid))
    return hits


def group(pairs):
    table = defaultdict(set)
    for key, nid in pairs:
        table[key].add(nid)
    return {key: len(table.get(key)) for key in table.keys()}  # raw order
