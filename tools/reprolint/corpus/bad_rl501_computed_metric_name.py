# reprolint-corpus: expect=RL501
"""Known-bad: computed metric names defeat static collision checks."""


def bump(metrics, subsystem: str):
    metrics.inc(subsystem + ".events")
