# reprolint-corpus: expect=RL502
"""Known-bad: metric name missing from METRIC_CATALOGUE."""


def bump(metrics):
    metrics.inc("engine.events_exectued")  # typo of events_executed
