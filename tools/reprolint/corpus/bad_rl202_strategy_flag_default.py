# reprolint-corpus: expect=RL202
"""Known-bad: a strategy flag (tick_method-style) declared omit-when-unset
must default to None -- a concrete default would make the omission rule
never fire consistently, silently changing every existing cache key."""
import dataclasses


@dataclasses.dataclass(frozen=True)
class SampleConfig:
    HASH_OMIT_WHEN_UNSET = ("tick_method",)

    tick_method: str = "periodic"
