# reprolint-corpus: expect=RL101
"""Known-bad: the ambient stdlib RNG cannot be replayed from a seed."""
import random


def roll() -> float:
    return random.random()
