# reprolint-corpus: expect=RL203
"""Known-bad: undeclared instance state is invisible to config_hash."""
import dataclasses


@dataclasses.dataclass(frozen=True)
class TrafficConfig:
    mode: str = "bursty"

    def __post_init__(self) -> None:
        object.__setattr__(self, "cached_plan", ())
