# reprolint-corpus: expect=RL202
"""Known-bad: omit-when-unset only works for None-default fields."""
import dataclasses


@dataclasses.dataclass(frozen=True)
class SampleConfig:
    HASH_OMIT_WHEN_UNSET = ("mode", "ghost")

    mode: str = "waypoint"
