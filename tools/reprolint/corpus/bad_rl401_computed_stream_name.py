# reprolint-corpus: expect=RL401
"""Known-bad: computed stream names defeat static collision checks."""


def build(streams, suffix: str):
    return streams.get("scenario-" + suffix)
