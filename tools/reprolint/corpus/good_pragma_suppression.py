# reprolint-corpus: expect=
"""Known-good: a justified pragma suppresses the finding."""
import numpy as np


def fresh():
    # Interactive convenience only; simulation paths inject a stream.
    return np.random.default_rng()  # reprolint: disable=RL104
