# reprolint-corpus: expect=
"""Known-good: sorted iteration, injected clock, injected RNG."""


def schedule(pending: set):
    for event in sorted(pending):
        yield event


def age(mtime: float, now: float) -> float:
    return now - mtime


def draw(rng, n: int):
    return rng.integers(0, 2**63, size=n)
