# reprolint-corpus: expect=RL505
"""Known-bad: HASH_EXCLUDE entry with no HASH_EXEMPT rationale."""

import dataclasses


@dataclasses.dataclass
class ProbeConfig:
    HASH_EXCLUDE = ("verbosity",)

    seed: int = 1
    verbosity: int = 0
