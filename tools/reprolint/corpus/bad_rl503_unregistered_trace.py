# reprolint-corpus: expect=RL503
"""Known-bad: trace category missing from TRACE_CATALOGUE."""


def note(tracer, now: float, node: int):
    tracer.record(now, "lmac.neighbour_lost", node)  # en-GB spelling drift
