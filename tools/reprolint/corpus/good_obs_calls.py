# reprolint-corpus: expect=
"""Known-good: literal, registered metric and trace names."""


def instrumented_tick(metrics, tracer, now: float, node: int, fanout: int):
    metrics.inc("engine.events_executed")
    metrics.observe("channel.fanout", fanout)
    tracer.record(now, "channel.tx", node, fanout=fanout)
