# reprolint-corpus: expect=RL201
"""Known-bad: a ClassVar knob is invisible to config_hash."""
import dataclasses
from typing import ClassVar


@dataclasses.dataclass(frozen=True)
class ChurnConfig:
    death_rate: float = 0.01
    scratch: ClassVar[float] = 0.5
