# reprolint-corpus: expect=RL102
"""Known-bad: wall-clock reads leak irreproducible state."""
import time


def age(mtime: float) -> float:
    return time.time() - mtime
