"""RL3xx: import-layering rules.

Builds the static import graph of every scanned ``src/`` module and
enforces the declared layer DAG.  Edges are classified:

* **eager** -- module-level (incl. class-body) imports: these run at
  import time and define initialisation order;
* **lazy** -- function-scoped imports, the sanctioned module
  ``__getattr__`` pattern, and ``importlib.import_module`` calls (for
  ``import_module(f".{name}", __name__)`` over a module-level dict of
  submodule names, every dict value is taken as a candidate edge);
* **typing** -- imports under ``if TYPE_CHECKING:``.

Checks:

* RL301: forbidden pairs.  ``repro.scenarios.spec`` / ``.models`` must
  not *reach* ``repro.experiments`` (transitively over eager edges, and
  no direct edge of any kind); ``repro.metrics`` / ``network`` / ``mac``
  / ``energy`` must not import ``repro.experiments`` at all.
* RL302: eager import cycles (lazy edges are exactly how cycles are
  legitimately broken, so they are excluded).
* RL303: an eager import whose target sits in a *higher* layer than the
  importer (see :data:`LAYERS`; longest-prefix match, higher rank =
  higher layer, equal ranks are free).
"""

from __future__ import annotations

import ast
import dataclasses
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .core import Finding, SourceFile, dotted_name

#: The declared layer DAG, as (module prefix, rank).  Longest prefix
#: wins; an eager import must never target a strictly higher rank.
#: Mirrors the architecture documented in ``docs/linting.md``.
LAYERS: Sequence[Tuple[str, int]] = (
    ("repro.utils", 0),
    ("repro.simulation", 10),
    ("repro.obs", 10),
    ("repro.scenarios.spec", 10),
    ("repro.network", 20),
    ("repro.energy", 20),
    ("repro.sensors", 30),
    ("repro.mac", 30),
    ("repro.core", 40),
    ("repro.workload", 50),
    ("repro.metrics", 50),
    ("repro.scenarios.models", 60),
    ("repro.scenarios", 60),
    ("repro.experiments", 70),
    ("repro.scenarios.static", 80),
    ("repro.scenarios.registry", 80),
    ("repro.scenarios.run", 80),
    ("repro.experiments.grid", 90),
    ("repro.experiments.campaign", 90),
    ("repro.obs.report", 90),
    ("repro", 100),
)

#: (importer prefix, forbidden target prefix): no direct edge of any kind.
FORBIDDEN_DIRECT: Sequence[Tuple[str, str]] = (
    ("repro.scenarios.spec", "repro.experiments"),
    ("repro.scenarios.models", "repro.experiments"),
    ("repro.metrics", "repro.experiments"),
    ("repro.network", "repro.experiments"),
    ("repro.mac", "repro.experiments"),
    ("repro.energy", "repro.experiments"),
    ("repro.simulation", "repro.experiments"),
    ("repro.sensors", "repro.experiments"),
)

#: (source prefix, unreachable target prefix): no *eager transitive* path.
FORBIDDEN_TRANSITIVE: Sequence[Tuple[str, str]] = (
    ("repro.scenarios.spec", "repro.experiments"),
    ("repro.scenarios.models", "repro.experiments"),
)

EAGER = "eager"
LAZY = "lazy"
TYPING = "typing"


@dataclasses.dataclass(frozen=True)
class ImportEdge:
    src: str  # importer module
    dst: str  # imported module
    kind: str  # eager | lazy | typing
    line: int


def layer_rank(module: str) -> Optional[int]:
    """Rank of a module under longest-prefix matching (None if unmapped)."""
    best: Optional[Tuple[int, int]] = None  # (prefix length, rank)
    for prefix, rank in LAYERS:
        if module == prefix or module.startswith(prefix + "."):
            if best is None or len(prefix) > best[0]:
                best = (len(prefix), rank)
    return best[1] if best else None


def _is_type_checking_test(test: ast.expr) -> bool:
    name = dotted_name(test) or ""
    return name.rsplit(".", 1)[-1] == "TYPE_CHECKING"


def _module_package(src: SourceFile) -> List[str]:
    """The package a module's relative imports resolve against."""
    parts = (src.module or "").split(".")
    if src.path.name == "__init__.py":
        return parts
    return parts[:-1]


def _resolve_from(
    src: SourceFile, node: ast.ImportFrom, known: Set[str]
) -> List[str]:
    if node.level:
        pkg = _module_package(src)
        if node.level - 1 > len(pkg):
            return []
        base_parts = pkg[: len(pkg) - (node.level - 1)]
        base = ".".join(
            base_parts + (node.module.split(".") if node.module else [])
        )
    else:
        base = node.module or ""
    if not base:
        return []
    targets = []
    for alias in node.names:
        candidate = f"{base}.{alias.name}"
        if candidate in known:
            targets.append(candidate)
    if base in known:
        targets.append(base)
    elif not targets and base.startswith("repro"):
        targets.append(base)
    return targets


def _dict_literal_values(tree: ast.Module) -> Set[str]:
    """String values of module-level dict literals (lazy-export tables)."""
    values: Set[str] = set()
    for stmt in tree.body:
        target_value = None
        if isinstance(stmt, ast.Assign):
            target_value = stmt.value
        elif isinstance(stmt, ast.AnnAssign):
            target_value = stmt.value
        if not isinstance(target_value, ast.Dict):
            continue
        if all(
            isinstance(v, ast.Constant) and isinstance(v.value, str)
            for v in target_value.values
        ) and target_value.values:
            values.update(v.value for v in target_value.values)
    return values


def build_graph(files: Sequence[SourceFile]) -> List[ImportEdge]:
    """Classified internal import edges over the scanned ``src`` modules."""
    known = {f.module for f in files if f.module}
    edges: List[ImportEdge] = []

    def add(src: SourceFile, dst: str, kind: str, line: int) -> None:
        if dst in known and dst != src.module:
            edges.append(ImportEdge(src.module or "", dst, kind, line))

    def visit(src: SourceFile, node: ast.AST, kind: str) -> None:
        if isinstance(node, ast.Import):
            for alias in node.names:
                add(src, alias.name, kind, node.lineno)
        elif isinstance(node, ast.ImportFrom):
            for target in _resolve_from(src, node, known):
                add(src, target, kind, node.lineno)
        elif isinstance(node, ast.If) and kind == EAGER:
            body_kind = TYPING if _is_type_checking_test(node.test) else kind
            for child in node.body:
                visit(src, child, body_kind)
            for child in node.orelse:
                visit(src, child, kind)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for child in ast.walk(node):
                if child is node:
                    continue
                if isinstance(child, (ast.Import, ast.ImportFrom)):
                    visit_shallow(src, child, LAZY)
                elif isinstance(child, ast.Call):
                    name = dotted_name(child.func) or ""
                    if name.rsplit(".", 1)[-1] != "import_module":
                        continue
                    if not child.args:
                        continue
                    arg = child.args[0]
                    pkg = ".".join(_module_package(src)) or (src.module or "")
                    if src.path.name == "__init__.py":
                        pkg = src.module or ""
                    if isinstance(arg, ast.Constant) and isinstance(
                        arg.value, str
                    ):
                        target = arg.value
                        if target.startswith("."):
                            target = pkg + target if pkg else target[1:]
                        add(src, target, LAZY, child.lineno)
                    elif isinstance(arg, ast.JoinedStr):
                        # f".{name}" over a lazy-export table: take every
                        # table value as a candidate submodule.
                        for value in _dict_literal_values(src.tree):
                            add(src, f"{pkg}.{value}", LAZY, child.lineno)
        else:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.expr):
                    continue
                visit(src, child, kind)

    def visit_shallow(src: SourceFile, node: ast.AST, kind: str) -> None:
        if isinstance(node, ast.Import):
            for alias in node.names:
                add(src, alias.name, kind, node.lineno)
        elif isinstance(node, ast.ImportFrom):
            for target in _resolve_from(src, node, known):
                add(src, target, kind, node.lineno)

    for src in files:
        if not src.module:
            continue
        for stmt in src.tree.body:
            visit(src, stmt, EAGER)
    return edges


def _prefixed(module: str, prefix: str) -> bool:
    return module == prefix or module.startswith(prefix + ".")


def _strongly_connected(adj: Dict[str, Set[str]]) -> List[List[str]]:
    """Tarjan SCCs (iterative), only components of size > 1."""
    index: Dict[str, int] = {}
    low: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    sccs: List[List[str]] = []
    counter = [0]

    for root in sorted(adj):
        if root in index:
            continue
        work = [(root, iter(sorted(adj.get(root, ()))))]
        index[root] = low[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, it = work[-1]
            advanced = False
            for nxt in it:
                if nxt not in index:
                    index[nxt] = low[nxt] = counter[0]
                    counter[0] += 1
                    stack.append(nxt)
                    on_stack.add(nxt)
                    work.append((nxt, iter(sorted(adj.get(nxt, ())))))
                    advanced = True
                    break
                if nxt in on_stack:
                    low[node] = min(low[node], index[nxt])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                if len(component) > 1:
                    sccs.append(sorted(component))
    return sccs


def check_graph(
    edges: Sequence[ImportEdge],
    module_files: Dict[str, Tuple[str, int]],
) -> List[Finding]:
    """All RL3xx findings for a classified import graph.

    ``module_files`` maps module -> (repo-relative path, anchor line) for
    findings that concern a module rather than a single import statement.
    """
    findings: List[Finding] = []

    def rel_of(module: str, line: int = 1) -> Tuple[str, int]:
        return module_files.get(module, (module, line))

    # RL301 direct
    for edge in edges:
        for src_prefix, dst_prefix in FORBIDDEN_DIRECT:
            if _prefixed(edge.src, src_prefix) and _prefixed(
                edge.dst, dst_prefix
            ):
                rel, _ = rel_of(edge.src)
                findings.append(
                    Finding(
                        "RL301",
                        rel,
                        edge.line,
                        f"{edge.src} must not import {edge.dst} "
                        f"({src_prefix} is declared {dst_prefix}-free)",
                    )
                )

    # RL301 transitive over eager edges
    eager_adj: Dict[str, Set[str]] = {}
    for edge in edges:
        if edge.kind == EAGER:
            eager_adj.setdefault(edge.src, set()).add(edge.dst)
    for src_prefix, dst_prefix in FORBIDDEN_TRANSITIVE:
        roots = sorted(
            m
            for m in {e.src for e in edges} | {e.dst for e in edges}
            if _prefixed(m, src_prefix)
        )
        for root in roots:
            parents: Dict[str, str] = {root: ""}
            queue = [root]
            hit: Optional[str] = None
            while queue and hit is None:
                node = queue.pop(0)
                for nxt in sorted(eager_adj.get(node, ())):
                    if nxt in parents:
                        continue
                    parents[nxt] = node
                    if _prefixed(nxt, dst_prefix):
                        hit = nxt
                        break
                    queue.append(nxt)
            if hit is None:
                continue
            chain = [hit]
            while chain[-1] != root:
                chain.append(parents[chain[-1]])
            chain.reverse()
            if len(chain) == 2:
                continue  # direct edge: already reported by RL301 direct
            rel, line = rel_of(root)
            findings.append(
                Finding(
                    "RL301",
                    rel,
                    line,
                    f"{root} reaches {hit} via "
                    f"{' -> '.join(chain)} ({src_prefix} is declared "
                    f"{dst_prefix}-free)",
                )
            )

    # RL302 eager cycles
    for component in _strongly_connected(eager_adj):
        rel, line = rel_of(component[0])
        findings.append(
            Finding(
                "RL302",
                rel,
                line,
                "eager import cycle: " + " <-> ".join(component),
            )
        )
    for edge in edges:
        if edge.kind == EAGER and edge.src == edge.dst:  # pragma: no cover
            rel, _ = rel_of(edge.src)
            findings.append(
                Finding("RL302", rel, edge.line, f"{edge.src} imports itself")
            )

    # RL303 layer ranks
    for edge in edges:
        if edge.kind != EAGER:
            continue
        src_rank = layer_rank(edge.src)
        dst_rank = layer_rank(edge.dst)
        if src_rank is None or dst_rank is None:
            continue
        if dst_rank > src_rank:
            rel, _ = rel_of(edge.src)
            findings.append(
                Finding(
                    "RL303",
                    rel,
                    edge.line,
                    f"{edge.src} (layer {src_rank}) imports {edge.dst} "
                    f"(layer {dst_rank}): imports must not go up the "
                    "layer DAG; use the lazy module-__getattr__ pattern "
                    "if the dependency is genuinely deferred",
                )
            )
    return findings


def check(files: List[SourceFile]) -> List[Finding]:
    src_files = [f for f in files if f.module]
    if not src_files:
        return []
    edges = build_graph(src_files)
    module_files = {f.module: (f.rel, 1) for f in src_files if f.module}
    return check_graph(edges, module_files)
