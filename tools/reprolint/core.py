"""Shared linter infrastructure: findings, rule catalogue, pragmas, parsing.

A :class:`SourceFile` is one parsed python file plus the policy flags the
CLI derives from its path (whether it is RNG-exempt, wall-clock-exempt,
or determinism-critical).  Rule modules consume lists of source files and
return :class:`Finding` objects; suppression (``# reprolint:
disable=RLxxx`` pragmas) and ``--select``/``--ignore`` filtering happen
here so every rule module stays oblivious to presentation concerns.
"""

from __future__ import annotations

import ast
import dataclasses
import re
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

#: Rule catalogue: code -> (one-line summary, one-line rationale).
#: ``docs/linting.md`` mirrors this table; ``--list-rules`` prints it.
RULES: Dict[str, Tuple[str, str]] = {
    "RL001": (
        "file does not parse",
        "a syntax error hides every other invariant",
    ),
    "RL101": (
        "stdlib `random` imported",
        "ambient global RNG breaks bit-identical replay; use RandomStreams",
    ),
    "RL102": (
        "wall-clock read (time.time/datetime.now/...)",
        "wall-clock values leak irreproducible state into results; "
        "inject a clock (see repro.utils.clock)",
    ),
    "RL103": (
        "entropy source (uuid/os.urandom/secrets)",
        "OS entropy is unseedable; derive ids from config instead",
    ),
    "RL104": (
        "direct numpy RNG outside simulation/rng.py",
        "generators must come from named RandomStreams streams so adding "
        "a consumer never perturbs existing draws",
    ),
    "RL110": (
        "iteration over a set without sorted() in determinism-critical code",
        "set order depends on insertion history and hash salting; event "
        "scheduling and tree construction must iterate in sorted order",
    ),
    "RL201": (
        "config-dataclass binding that is not a hashed field",
        "a class-level knob bypasses _canonical and aliases cache keys",
    ),
    "RL202": (
        "invalid HASH_OMIT_WHEN_UNSET entry",
        "omit-when-unset only works for declared fields defaulting to None",
    ),
    "RL203": (
        "object.__setattr__ on an undeclared config attribute",
        "smuggled instance state is invisible to config_hash",
    ),
    "RL210": (
        "config field not reachable from _canonical/config_hash",
        "an unhashed field silently aliases distinct configs to one cache "
        "entry (add it to HASH_EXEMPT only with a written rationale)",
    ),
    "RL301": (
        "forbidden cross-layer import",
        "scenarios.{spec,models} must stay experiment-free and "
        "metrics/network/mac/energy must never import experiments",
    ),
    "RL302": (
        "eager import cycle",
        "cycles make module initialisation order-dependent; break them "
        "with the sanctioned lazy module-__getattr__ pattern",
    ),
    "RL303": (
        "import against the declared layer DAG",
        "upward imports entangle low layers with experiment orchestration",
    ),
    "RL401": (
        "RandomStreams stream name is not a string literal",
        "computed stream names defeat static collision checking",
    ),
    "RL402": (
        "unregistered RandomStreams stream name",
        "every stream must be declared in STREAM_REGISTRY "
        "(simulation/rng.py) so collisions are impossible",
    ),
    "RL403": (
        "stream used outside its registered owner module",
        "two subsystems sharing a stream name silently correlate draws",
    ),
    "RL404": (
        "registered stream never used",
        "dead registry entries hide real collisions behind noise",
    ),
    "RL405": (
        "STREAM_REGISTRY missing or unparseable",
        "the stream table is the single source of truth for RL4xx",
    ),
    "RL501": (
        "metric/trace name is not a string literal",
        "computed names defeat static collision checking",
    ),
    "RL502": (
        "unregistered metric name",
        "every metric must be declared in METRIC_CATALOGUE "
        "(obs/catalogue.py) so spelling drift is impossible",
    ),
    "RL503": (
        "unregistered trace category",
        "every tracer category must be declared in TRACE_CATALOGUE "
        "(obs/catalogue.py) so spelling drift is impossible",
    ),
    "RL504": (
        "clock read inside a metric/trace call argument",
        "measured time in a recorded payload poisons determinism "
        "comparisons; timings belong to the phase profiler",
    ),
    "RL505": (
        "HASH_EXCLUDE field without a HASH_EXEMPT rationale",
        "an unconditional hash exclusion is indistinguishable from a "
        "hashing bug unless justified in experiments/batch.py",
    ),
    "RL506": (
        "obs catalogue missing or unparseable",
        "the catalogue tables are the single source of truth for RL5xx",
    ),
}

_PRAGMA_RE = re.compile(
    r"#\s*reprolint:\s*(disable|disable-file)=([A-Z0-9,\s]*)"
)


@dataclasses.dataclass(frozen=True)
class Finding:
    """One rule violation at a specific location."""

    code: str
    path: str  # repo-relative posix path
    line: int
    message: str

    @property
    def sort_key(self) -> Tuple[str, int, str]:
        return (self.path, self.line, self.code)

    def to_json(self) -> Dict[str, object]:
        return {
            "code": self.code,
            "path": self.path,
            "line": self.line,
            "message": self.message,
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.code} {self.message}"


@dataclasses.dataclass
class SourceFile:
    """A parsed source file plus the path-derived lint policy flags."""

    path: Path
    rel: str
    source: str
    tree: ast.Module
    #: module dotted name when the file lives under ``src/`` (else None)
    module: Optional[str] = None
    #: skip RL101/RL103/RL104 (the sanctioned RNG module)
    rng_exempt: bool = False
    #: skip RL102 (the sanctioned wall-clock module)
    clock_exempt: bool = False
    #: apply RL110 (simulation/, network/, scenarios/models.py)
    determinism_critical: bool = False
    #: per-line pragma patterns: line -> {"RL104", ...}
    line_pragmas: Dict[int, Set[str]] = dataclasses.field(default_factory=dict)
    #: file-wide pragma patterns
    file_pragmas: Set[str] = dataclasses.field(default_factory=set)


def parse_pragmas(source: str) -> Tuple[Dict[int, Set[str]], Set[str]]:
    """Extract ``# reprolint: disable[-file]=...`` pragmas from source."""
    line_pragmas: Dict[int, Set[str]] = {}
    file_pragmas: Set[str] = set()
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _PRAGMA_RE.search(text)
        if not match:
            continue
        codes = {c.strip() for c in match.group(2).split(",") if c.strip()}
        if not codes:
            continue
        if match.group(1) == "disable-file":
            file_pragmas |= codes
        else:
            line_pragmas.setdefault(lineno, set()).update(codes)
    return line_pragmas, file_pragmas


def load_source_file(
    path: Path, repo_root: Path
) -> Tuple[Optional[SourceFile], Optional[Finding]]:
    """Parse ``path``; returns ``(source_file, None)`` or ``(None, RL001)``."""
    try:
        rel = path.resolve().relative_to(repo_root.resolve()).as_posix()
    except ValueError:
        rel = path.as_posix()
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return None, Finding(
            code="RL001",
            path=rel,
            line=exc.lineno or 1,
            message=f"file does not parse: {exc.msg}",
        )
    module = None
    parts = Path(rel).parts
    if parts and parts[0] == "src" and rel.endswith(".py"):
        mod_parts = list(parts[1:])
        mod_parts[-1] = mod_parts[-1][: -len(".py")]
        if mod_parts[-1] == "__init__":
            mod_parts.pop()
        if mod_parts:
            module = ".".join(mod_parts)
    line_pragmas, file_pragmas = parse_pragmas(source)
    return (
        SourceFile(
            path=path,
            rel=rel,
            source=source,
            tree=tree,
            module=module,
            line_pragmas=line_pragmas,
            file_pragmas=file_pragmas,
        ),
        None,
    )


def code_matches(code: str, patterns: Sequence[str]) -> bool:
    """Prefix matching: ``RL1`` selects the whole RL1xx family."""
    return any(code == p or code.startswith(p) for p in patterns if p)


def apply_pragmas(
    findings: Sequence[Finding], files: Sequence[SourceFile]
) -> Tuple[List[Finding], int]:
    """Drop findings suppressed by pragmas; returns (kept, n_suppressed)."""
    by_rel = {f.rel: f for f in files}
    kept: List[Finding] = []
    suppressed = 0
    for finding in findings:
        src = by_rel.get(finding.path)
        if src is not None:
            patterns = set(src.file_pragmas)
            patterns |= src.line_pragmas.get(finding.line, set())
            if patterns and code_matches(finding.code, sorted(patterns)):
                suppressed += 1
                continue
        kept.append(finding)
    return kept, suppressed


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None
