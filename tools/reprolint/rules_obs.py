"""RL5xx: observability-catalogue discipline.

Observability has the same silent-collision failure mode as random
streams: two call sites incrementing subtly different spellings of one
counter produce two half-counts no test catches, and a wall-clock value
smuggled into a metric payload poisons determinism comparisons.  The
defence mirrors RL4xx: the declarative tables in
``repro.obs.catalogue`` (``METRIC_CATALOGUE`` / ``TRACE_CATALOGUE``) are
the single source of truth, and every call site is checked statically:

* RL501: metric names and trace categories must be string literals;
* RL502: a metric name must be registered in ``METRIC_CATALOGUE``;
* RL503: a trace category must be registered in ``TRACE_CATALOGUE``;
* RL504: no clock-read call may appear inside a metric/trace call's
  arguments (durations belong in the phase profiler, whose output never
  enters anything hashed);
* RL505: every field a config dataclass lists in ``HASH_EXCLUDE`` must
  have a matching ``ClassName.field`` rationale entry in
  ``repro.experiments.batch.HASH_EXEMPT`` -- an exclusion without a
  written justification is indistinguishable from a hashing bug;
* RL506: the obs catalogue itself is missing or unparseable.

A receiver "looks like" a metrics registry when it is a name or
attribute called ``metrics``/``_metrics`` and the method is one of
``inc``/``gauge_set``/``observe``; a tracer when it is called
``tracer``/``_tracer`` with method ``record`` -- the project-wide naming
conventions for :class:`repro.obs.metrics.MetricsRegistry` and
:class:`repro.simulation.trace.Tracer`.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, List, Optional, Set, Tuple

from .core import Finding, SourceFile, dotted_name
from .rules_hashcov import parse_hash_exempt

#: Repo-relative path of the catalogue module.
CATALOGUE_PATH = "src/repro/obs/catalogue.py"

#: Repo-relative path of the module declaring ``HASH_EXEMPT``.
BATCH_PATH = "src/repro/experiments/batch.py"

#: Receiver names treated as MetricsRegistry instances.
_METRICSY_NAMES = {"metrics", "_metrics"}

#: MetricsRegistry methods taking a metric name as first argument.
_METRIC_METHODS = {"inc", "gauge_set", "observe"}

#: Receiver names treated as Tracer instances.
_TRACERY_NAMES = {"tracer", "_tracer"}

#: Call names that read a clock; none may appear inside a metric/trace
#: call's arguments (RL102 bans the wall-clock ones everywhere in
#: determinism-critical code, but the monotonic ones are sanctioned for
#: profiling -- just never inside a recorded payload).
_CLOCK_CALLS = {
    "time",
    "time_ns",
    "perf_counter",
    "monotonic",
    "process_time",
    "now",
    "utcnow",
    "today",
    "mono_now",
    "wall_now",
}


def parse_catalogue(
    tree: ast.Module, table_name: str
) -> Optional[Set[str]]:
    """The keys of the ``table_name`` dict literal (name -> description)."""
    for node in ast.walk(tree):
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        if not any(
            isinstance(t, ast.Name) and t.id == table_name for t in targets
        ):
            continue
        if not isinstance(value, ast.Dict):
            return None
        names: Set[str] = set()
        for key in value.keys:
            if not (isinstance(key, ast.Constant) and isinstance(key.value, str)):
                return None
            names.add(key.value)
        return names
    return None


def _load_tree(
    files: List[SourceFile], repo_root: Path, rel: str
) -> Optional[ast.Module]:
    src = next((f for f in files if f.rel == rel), None)
    if src is not None:
        return src.tree
    path = repo_root / rel
    if path.is_file():
        try:
            return ast.parse(path.read_text(encoding="utf-8"))
        except SyntaxError:
            return None
    return None


def load_catalogues(
    files: List[SourceFile], repo_root: Path
) -> Tuple[Optional[Set[str]], Optional[Set[str]], Optional[Finding]]:
    """(metric names, trace categories) from the scanned files or disk."""
    tree = _load_tree(files, repo_root, CATALOGUE_PATH)
    if tree is None:
        return None, None, Finding(
            "RL506",
            CATALOGUE_PATH,
            1,
            "obs/catalogue.py not found or unparseable: cannot check "
            "metric/trace name discipline",
        )
    metric_names = parse_catalogue(tree, "METRIC_CATALOGUE")
    trace_names = parse_catalogue(tree, "TRACE_CATALOGUE")
    if metric_names is None or trace_names is None:
        return None, None, Finding(
            "RL506",
            CATALOGUE_PATH,
            1,
            "METRIC_CATALOGUE / TRACE_CATALOGUE dict literals (name -> "
            "description) not found in obs/catalogue.py",
        )
    return metric_names, trace_names, None


def _receiver_named(node: ast.expr, names: Set[str]) -> bool:
    if isinstance(node, ast.Name):
        return node.id in names
    if isinstance(node, ast.Attribute):
        return node.attr in names
    return False


def _metric_call(node: ast.Call) -> Optional[int]:
    """Index of the metric-name argument, or ``None`` if not a metric call."""
    func = node.func
    if not (isinstance(func, ast.Attribute) and func.attr in _METRIC_METHODS):
        return None
    return 0 if _receiver_named(func.value, _METRICSY_NAMES) else None


def _trace_call(node: ast.Call) -> Optional[int]:
    """Index of the category argument, or ``None`` if not a tracer call."""
    func = node.func
    if not (isinstance(func, ast.Attribute) and func.attr == "record"):
        return None
    return 1 if _receiver_named(func.value, _TRACERY_NAMES) else None


def _clock_reads(call: ast.Call) -> List[ast.Call]:
    """Clock-reading calls nested anywhere in ``call``'s arguments."""
    reads: List[ast.Call] = []
    for arg in list(call.args) + [kw.value for kw in call.keywords]:
        for node in ast.walk(arg):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func) or ""
            if name.rsplit(".", 1)[-1] in _CLOCK_CALLS:
                reads.append(node)
    return reads


def _check_hash_exclude(
    src: SourceFile, exempt: Set[str]
) -> List[Finding]:
    """RL505: HASH_EXCLUDE entries need a HASH_EXEMPT rationale."""
    findings: List[Finding] = []
    for node in ast.walk(src.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        for stmt in node.body:
            if not isinstance(stmt, ast.Assign):
                continue
            if not any(
                isinstance(t, ast.Name) and t.id == "HASH_EXCLUDE"
                for t in stmt.targets
            ):
                continue
            try:
                entries = ast.literal_eval(stmt.value)
            except (ValueError, TypeError):
                entries = None
            if not isinstance(entries, (tuple, list)) or not all(
                isinstance(e, str) for e in (entries or ())
            ):
                findings.append(
                    Finding(
                        "RL505",
                        src.rel,
                        stmt.lineno,
                        f"{node.name}.HASH_EXCLUDE must be a literal "
                        "tuple/list of field-name strings",
                    )
                )
                continue
            for field in entries:
                qualified = f"{node.name}.{field}"
                if qualified not in exempt:
                    findings.append(
                        Finding(
                            "RL505",
                            src.rel,
                            stmt.lineno,
                            f"HASH_EXCLUDE field {qualified!r} has no "
                            "matching entry in experiments/batch.py "
                            "HASH_EXEMPT: every unconditional hash "
                            "exclusion needs a written rationale",
                        )
                    )
    return findings


def check(
    files: List[SourceFile],
    repo_root: Path,
    *,
    repo_mode: bool = True,
) -> List[Finding]:
    findings: List[Finding] = []
    metric_names, trace_names, catalogue_finding = load_catalogues(
        files, repo_root
    )
    if catalogue_finding is not None:
        return [catalogue_finding]
    assert metric_names is not None and trace_names is not None

    exempt: Set[str] = set()
    batch_tree = _load_tree(files, repo_root, BATCH_PATH)
    if batch_tree is not None:
        parsed = parse_hash_exempt(batch_tree)
        if parsed is not None:
            exempt = parsed

    for src in files:
        findings.extend(_check_hash_exclude(src, exempt))
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Call):
                continue
            metric_idx = _metric_call(node)
            trace_idx = _trace_call(node)
            if metric_idx is None and trace_idx is None:
                continue
            for read in _clock_reads(node):
                findings.append(
                    Finding(
                        "RL504",
                        src.rel,
                        read.lineno,
                        "clock read inside a metric/trace call argument: "
                        "measured time must never enter a recorded "
                        "payload (use the phase profiler)",
                    )
                )
            idx = metric_idx if metric_idx is not None else trace_idx
            kind = "metric name" if metric_idx is not None else "trace category"
            if idx >= len(node.args):
                continue  # e.g. keyword-only call forms; nothing to check
            arg = node.args[idx]
            if not (isinstance(arg, ast.Constant) and isinstance(arg.value, str)):
                findings.append(
                    Finding(
                        "RL501",
                        src.rel,
                        node.lineno,
                        f"{kind} must be a string literal so spelling "
                        "collisions are statically checkable",
                    )
                )
                continue
            name = arg.value
            if metric_idx is not None and name not in metric_names:
                findings.append(
                    Finding(
                        "RL502",
                        src.rel,
                        node.lineno,
                        f"metric {name!r} is not registered in "
                        "METRIC_CATALOGUE (obs/catalogue.py)",
                    )
                )
            elif trace_idx is not None and name not in trace_names:
                findings.append(
                    Finding(
                        "RL503",
                        src.rel,
                        node.lineno,
                        f"trace category {name!r} is not registered in "
                        "TRACE_CATALOGUE (obs/catalogue.py)",
                    )
                )
    return findings
