"""RL2xx: config hash-coverage rules.

The cache key of a trial is ``config_hash(config)``, computed by the
generic ``repro.experiments.batch._canonical`` walk over dataclass
fields.  The silent cache-aliasing bug class is a configuration knob that
*behaves* like config but is invisible to that walk: a ``ClassVar``, a
plain class attribute, an undeclared ``object.__setattr__`` instance
attribute, or a field dropped by a broken ``HASH_OMIT_WHEN_UNSET`` entry.
Two configs differing only in such a knob would share one cache entry.

Static checks (RL201/RL202/RL203) parse the config dataclasses; the
dynamic check (RL210) imports the real classes and verifies every
declared field actually appears in the canonical payload (or is listed
in ``repro.experiments.batch.HASH_EXEMPT``).  ALL_CAPS class attributes
are treated as contract constants (``MODES``, ``HASH_OMIT_WHEN_UNSET``,
...), not knobs.
"""

from __future__ import annotations

import ast
import dataclasses as _dc
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .core import Finding, SourceFile, dotted_name

#: The config dataclasses whose fields feed ``config_hash``.
CONFIG_CLASS_NAMES = {
    "ExperimentConfig",
    "ScenarioConfig",
    "ChurnConfig",
    "MobilityConfig",
    "TrafficConfig",
    "EnergyConfig",
    "DirQConfig",
}


def _is_dataclass_def(node: ast.ClassDef) -> bool:
    for dec in node.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        name = dotted_name(target) or ""
        if name.rsplit(".", 1)[-1] == "dataclass":
            return True
    return False


def _declares_omit_table(node: ast.ClassDef) -> bool:
    for stmt in node.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if (
                    isinstance(target, ast.Name)
                    and target.id == "HASH_OMIT_WHEN_UNSET"
                ):
                    return True
    return False


def _annotation_is_classvar(node: ast.AST) -> bool:
    base = node.value if isinstance(node, ast.Subscript) else node
    name = dotted_name(base) or ""
    return name.rsplit(".", 1)[-1] == "ClassVar"


def iter_config_classes(tree: ast.Module) -> Iterable[ast.ClassDef]:
    """Config dataclasses in a module: by name, or by declaring the
    ``HASH_OMIT_WHEN_UNSET`` contract attribute."""
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef) or not _is_dataclass_def(node):
            continue
        if node.name in CONFIG_CLASS_NAMES or _declares_omit_table(node):
            yield node


def _class_fields(node: ast.ClassDef) -> Dict[str, Optional[ast.expr]]:
    """Declared dataclass fields -> default value expression (or None)."""
    fields: Dict[str, Optional[ast.expr]] = {}
    for stmt in node.body:
        if (
            isinstance(stmt, ast.AnnAssign)
            and isinstance(stmt.target, ast.Name)
            and not _annotation_is_classvar(stmt.annotation)
        ):
            fields[stmt.target.id] = stmt.value
    return fields


def check_class_ast(
    node: ast.ClassDef, rel: str, exempt: Set[str]
) -> List[Finding]:
    """RL201/RL202/RL203 for one config dataclass definition."""
    findings: List[Finding] = []
    fields = _class_fields(node)
    qualify = lambda name: f"{node.name}.{name}"  # noqa: E731

    for stmt in node.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(
            stmt.target, ast.Name
        ):
            name = stmt.target.id
            if (
                _annotation_is_classvar(stmt.annotation)
                and not name.isupper()
                and not name.startswith("__")
                and qualify(name) not in exempt
            ):
                findings.append(
                    Finding(
                        "RL201",
                        rel,
                        stmt.lineno,
                        f"{node.name}.{name} is a ClassVar, invisible to "
                        "config_hash: make it a field or add it to "
                        "HASH_EXEMPT with a rationale",
                    )
                )
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if not isinstance(target, ast.Name):
                    continue
                name = target.id
                if (
                    not name.isupper()
                    and not name.startswith("__")
                    and qualify(name) not in exempt
                ):
                    findings.append(
                        Finding(
                            "RL201",
                            rel,
                            stmt.lineno,
                            f"{node.name}.{name} is an unannotated class "
                            "attribute, invisible to config_hash: declare "
                            "it as a field (or ALL_CAPS constant / "
                            "HASH_EXEMPT entry)",
                        )
                    )

    # RL202: HASH_OMIT_WHEN_UNSET entries must be None-default fields.
    for stmt in node.body:
        if not isinstance(stmt, ast.Assign):
            continue
        if not any(
            isinstance(t, ast.Name) and t.id == "HASH_OMIT_WHEN_UNSET"
            for t in stmt.targets
        ):
            continue
        if not isinstance(stmt.value, (ast.Tuple, ast.List, ast.Set)):
            findings.append(
                Finding(
                    "RL202",
                    rel,
                    stmt.lineno,
                    f"{node.name}.HASH_OMIT_WHEN_UNSET must be a literal "
                    "tuple of field names",
                )
            )
            continue
        for elt in stmt.value.elts:
            if not (
                isinstance(elt, ast.Constant) and isinstance(elt.value, str)
            ):
                findings.append(
                    Finding(
                        "RL202",
                        rel,
                        elt.lineno,
                        f"{node.name}.HASH_OMIT_WHEN_UNSET entries must be "
                        "string literals",
                    )
                )
                continue
            name = elt.value
            if name not in fields:
                findings.append(
                    Finding(
                        "RL202",
                        rel,
                        elt.lineno,
                        f"{node.name}.HASH_OMIT_WHEN_UNSET names unknown "
                        f"field {name!r}",
                    )
                )
                continue
            default = fields[name]
            if not (
                isinstance(default, ast.Constant) and default.value is None
            ):
                findings.append(
                    Finding(
                        "RL202",
                        rel,
                        elt.lineno,
                        f"{node.name}.{name} is omit-when-unset but its "
                        "default is not None, so omission would never "
                        "trigger consistently",
                    )
                )

    # RL203: smuggled instance attributes.
    for stmt in node.body:
        if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for sub in ast.walk(stmt):
            if not isinstance(sub, ast.Call):
                continue
            if dotted_name(sub.func) != "object.__setattr__":
                continue
            if len(sub.args) < 2:
                continue
            first, second = sub.args[0], sub.args[1]
            if not (isinstance(first, ast.Name) and first.id == "self"):
                continue
            if not (
                isinstance(second, ast.Constant)
                and isinstance(second.value, str)
            ):
                findings.append(
                    Finding(
                        "RL203",
                        rel,
                        sub.lineno,
                        f"{node.name}: object.__setattr__ with a computed "
                        "attribute name cannot be checked for hash "
                        "coverage",
                    )
                )
                continue
            if (
                second.value not in fields
                and qualify(second.value) not in exempt
            ):
                findings.append(
                    Finding(
                        "RL203",
                        rel,
                        sub.lineno,
                        f"{node.name}.{second.value} is set via "
                        "object.__setattr__ but is not a declared field: "
                        "it is invisible to config_hash",
                    )
                )
    return findings


def parse_hash_exempt(batch_tree: ast.Module) -> Optional[Set[str]]:
    """The ``HASH_EXEMPT`` literal from ``repro.experiments.batch``."""
    for node in ast.walk(batch_tree):
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        if not any(
            isinstance(t, ast.Name) and t.id == "HASH_EXEMPT" for t in targets
        ):
            continue
        try:
            literal = ast.literal_eval(value)
        except (ValueError, TypeError):
            # frozenset({...}) is a Call, not a literal: evaluate its arg.
            if (
                isinstance(value, ast.Call)
                and dotted_name(value.func) == "frozenset"
            ):
                if not value.args:
                    return set()
                try:
                    literal = ast.literal_eval(value.args[0])
                except (ValueError, TypeError):
                    return None
            else:
                return None
        return {str(item) for item in literal}
    return None


def check_hash_coverage(
    cls: type,
    instance: object,
    canonical,
    exempt: Set[str],
) -> List[str]:
    """RL210 core: declared fields missing from the canonical payload.

    ``canonical`` is (a stand-in for) ``repro.experiments.batch._canonical``;
    a field is covered when it appears in ``canonical(instance)``, is a
    sanctioned ``HASH_OMIT_WHEN_UNSET`` entry currently unset, or is
    listed in ``exempt`` as ``"ClassName.field"``.
    """
    payload = canonical(instance)
    keys = set(payload) if isinstance(payload, dict) else set()
    omit = set(getattr(cls, "HASH_OMIT_WHEN_UNSET", ()))
    missing = []
    for field in _dc.fields(cls):
        if field.name in keys:
            continue
        if field.name in omit and getattr(instance, field.name) is None:
            continue
        if f"{cls.__name__}.{field.name}" in exempt:
            continue
        missing.append(field.name)
    return missing


def _dynamic_instances() -> Sequence[Tuple[type, object]]:
    """Default instances of every config class (imports the real package)."""
    from repro.core.config import DirQConfig
    from repro.experiments.config import ExperimentConfig
    from repro.scenarios.spec import (
        ChurnConfig,
        EnergyConfig,
        MobilityConfig,
        ScenarioConfig,
        TrafficConfig,
    )

    return [
        (DirQConfig, DirQConfig()),
        (ExperimentConfig, ExperimentConfig()),
        (ChurnConfig, ChurnConfig()),
        (MobilityConfig, MobilityConfig()),
        (TrafficConfig, TrafficConfig()),
        (EnergyConfig, EnergyConfig()),
        (ScenarioConfig, ScenarioConfig(churn=ChurnConfig())),
    ]


def check(files: List[SourceFile], *, dynamic: bool = True) -> List[Finding]:
    findings: List[Finding] = []
    exempt: Set[str] = set()
    batch_src = next(
        (f for f in files if f.rel == "src/repro/experiments/batch.py"), None
    )
    if batch_src is not None:
        parsed = parse_hash_exempt(batch_src.tree)
        if parsed is not None:
            exempt = parsed

    class_lines: Dict[str, Tuple[str, int]] = {}
    for src in files:
        for node in iter_config_classes(src.tree):
            class_lines.setdefault(node.name, (src.rel, node.lineno))
            findings.extend(check_class_ast(node, src.rel, exempt))

    if dynamic and batch_src is not None:
        try:
            from repro.experiments.batch import (  # noqa: WPS433
                HASH_EXEMPT,
                _canonical,
            )

            for cls, instance in _dynamic_instances():
                missing = check_hash_coverage(
                    cls, instance, _canonical, set(HASH_EXEMPT)
                )
                rel, line = class_lines.get(
                    cls.__name__, ("src/repro/experiments/batch.py", 1)
                )
                for name in missing:
                    findings.append(
                        Finding(
                            "RL210",
                            rel,
                            line,
                            f"{cls.__name__}.{name} is not reachable from "
                            "_canonical/config_hash and is not in "
                            "HASH_EXEMPT: distinct configs would alias "
                            "one cache entry",
                        )
                    )
        except Exception as exc:  # pragma: no cover - import environment
            findings.append(
                Finding(
                    "RL210",
                    "src/repro/experiments/batch.py",
                    1,
                    f"dynamic hash-coverage check could not run: {exc!r}",
                )
            )
    return findings
