"""RL4xx: RandomStreams stream-name discipline.

Two subsystems accidentally sharing a stream name draw from the *same*
generator and silently correlate -- the failure is statistical, so no
test catches it.  The defence is a single declarative table,
``STREAM_REGISTRY`` in ``repro.simulation.rng``, mapping every stream
name to the one module allowed to request it.  This rule module checks
every ``<streams>.get("...")`` call site against that table:

* RL401: the stream name must be a string literal (computed names defeat
  static collision checking);
* RL402: the literal must be registered;
* RL403: the call must come from the registered owner module (prefix
  match, so helpers under the owner package are fine);
* RL404: registry entries no call site uses are dead weight (repo-wide
  scans only);
* RL405: the registry itself is missing or unparseable.

A receiver "looks like" a stream factory when it is a name or attribute
called ``streams``/``_streams``/``random_streams`` -- the project-wide
naming convention for :class:`repro.simulation.rng.RandomStreams`.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from .core import Finding, SourceFile, dotted_name

#: Repo-relative path of the registry module.
REGISTRY_PATH = "src/repro/simulation/rng.py"

#: Receiver names treated as RandomStreams factories.
_STREAMY_NAMES = {"streams", "_streams", "random_streams"}


def parse_stream_registry(tree: ast.Module) -> Optional[Dict[str, str]]:
    """The ``STREAM_REGISTRY`` dict literal (name -> owner module)."""
    for node in ast.walk(tree):
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        if not any(
            isinstance(t, ast.Name) and t.id == "STREAM_REGISTRY"
            for t in targets
        ):
            continue
        if not isinstance(value, ast.Dict):
            return None
        registry: Dict[str, str] = {}
        for key, val in zip(value.keys, value.values):
            if not (
                isinstance(key, ast.Constant)
                and isinstance(key.value, str)
                and isinstance(val, ast.Constant)
                and isinstance(val.value, str)
            ):
                return None
            registry[key.value] = val.value
        return registry
    return None


def load_registry(
    files: List[SourceFile], repo_root: Path
) -> Tuple[Optional[Dict[str, str]], Optional[Finding]]:
    """Registry from the scanned files, else from ``repo_root`` on disk."""
    src = next((f for f in files if f.rel == REGISTRY_PATH), None)
    tree: Optional[ast.Module] = None
    if src is not None:
        tree = src.tree
    else:
        path = repo_root / REGISTRY_PATH
        if path.is_file():
            try:
                tree = ast.parse(path.read_text(encoding="utf-8"))
            except SyntaxError:
                tree = None
    if tree is None:
        return None, Finding(
            "RL405",
            REGISTRY_PATH,
            1,
            "simulation/rng.py not found or unparseable: cannot check "
            "stream discipline",
        )
    registry = parse_stream_registry(tree)
    if registry is None:
        return None, Finding(
            "RL405",
            REGISTRY_PATH,
            1,
            "STREAM_REGISTRY dict literal (stream name -> owner module) "
            "not found in simulation/rng.py",
        )
    return registry, None


def _is_stream_get(node: ast.Call) -> bool:
    func = node.func
    if not (isinstance(func, ast.Attribute) and func.attr == "get"):
        return False
    receiver = func.value
    if isinstance(receiver, ast.Name):
        return receiver.id in _STREAMY_NAMES
    if isinstance(receiver, ast.Attribute):
        return receiver.attr in _STREAMY_NAMES
    return False


def check(
    files: List[SourceFile],
    repo_root: Path,
    *,
    repo_mode: bool = True,
) -> List[Finding]:
    findings: List[Finding] = []
    registry, registry_finding = load_registry(files, repo_root)
    if registry_finding is not None:
        return [registry_finding]
    assert registry is not None

    used: Dict[str, int] = {}
    for src in files:
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Call) or not _is_stream_get(node):
                continue
            if not node.args:
                continue
            arg = node.args[0]
            if not (
                isinstance(arg, ast.Constant) and isinstance(arg.value, str)
            ):
                findings.append(
                    Finding(
                        "RL401",
                        src.rel,
                        node.lineno,
                        "RandomStreams stream name must be a string "
                        "literal so collisions are statically checkable",
                    )
                )
                continue
            name = arg.value
            if name not in registry:
                findings.append(
                    Finding(
                        "RL402",
                        src.rel,
                        node.lineno,
                        f"stream {name!r} is not registered in "
                        "STREAM_REGISTRY (simulation/rng.py)",
                    )
                )
                continue
            used[name] = used.get(name, 0) + 1
            owner = registry[name]
            module = src.module or ""
            if not (module == owner or module.startswith(owner + ".")):
                findings.append(
                    Finding(
                        "RL403",
                        src.rel,
                        node.lineno,
                        f"stream {name!r} is registered to {owner}; "
                        f"requesting it from {module or src.rel} would "
                        "correlate draws across subsystems",
                    )
                )

    if repo_mode:
        registry_src = next(
            (f for f in files if f.rel == REGISTRY_PATH), None
        )
        for name in sorted(set(registry) - set(used)):
            findings.append(
                Finding(
                    "RL404",
                    REGISTRY_PATH,
                    1 if registry_src is None else _registry_line(
                        registry_src.tree, name
                    ),
                    f"registered stream {name!r} has no call site in the "
                    "scanned sources: remove the dead entry",
                )
            )
    return findings


def _registry_line(tree: ast.Module, name: str) -> int:
    for node in ast.walk(tree):
        value = None
        if isinstance(node, ast.Assign):
            value = node.value
        elif isinstance(node, ast.AnnAssign):
            value = node.value
        if isinstance(value, ast.Dict):
            for key in value.keys:
                if isinstance(key, ast.Constant) and key.value == name:
                    return key.lineno
    return 1
