"""RL1xx: determinism rules.

RL101/RL103 forbid ambient entropy (stdlib ``random``, ``uuid``,
``secrets``, ``os.urandom``); RL102 forbids wall-clock reads outside the
sanctioned clock module; RL104 forbids constructing or using numpy RNGs
outside ``repro.simulation.rng``; RL110 flags iteration over sets without
a ``sorted(...)`` wrapper in determinism-critical modules (event
scheduling and tree construction must not depend on hash order).

RL110 uses a deliberately simple, local type inference: a name is
"set-typed" when it is annotated as a set, assigned from a set literal /
``set()`` / set comprehension / set operator, or when the attribute name
is declared set-typed by any class in the scanned file set (which is how
``config.initially_dead`` is recognised far from its declaration).
False positives are expected to be rare and are suppressed with a
``# reprolint: disable=RL110`` pragma carrying a one-line justification.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional, Set

from .core import Finding, SourceFile, dotted_name

#: Dotted-call suffixes that read the wall clock.
WALL_CLOCK_SUFFIXES = {
    "time.time",
    "time.time_ns",
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
    "date.today",
}

#: Names that build or transform sets when called as methods.
_SET_METHODS = {
    "union",
    "intersection",
    "difference",
    "symmetric_difference",
    "copy",
}

_SET_ANNOTATION_NAMES = {
    "Set",
    "FrozenSet",
    "AbstractSet",
    "MutableSet",
    "set",
    "frozenset",
}

_SET_BINOPS = (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)


def _annotation_is_set(node: ast.AST) -> bool:
    """Whether an annotation expression denotes a set type.

    Only the *outermost* constructor counts: ``Set[int]`` and
    ``Optional[Set[int]]`` are set-typed, ``Dict[int, Set[int]]`` is not.
    """
    if isinstance(node, ast.Subscript):
        base = dotted_name(node.value) or ""
        leaf = base.rsplit(".", 1)[-1]
        if leaf in _SET_ANNOTATION_NAMES:
            return True
        if leaf == "Optional":
            return _annotation_is_set(node.slice)
        return False
    name = dotted_name(node)
    if name is None:
        return False
    return name.rsplit(".", 1)[-1] in _SET_ANNOTATION_NAMES


def _call_name(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Call):
        return dotted_name(node.func)
    return None


class _SetTracker:
    """Per-scope table of set-typed names and ``self.<attr>`` attributes."""

    def __init__(self, global_set_attrs: Set[str]):
        self.names: Set[str] = set()
        self.self_attrs: Set[str] = set()
        self.global_set_attrs = global_set_attrs

    def is_setty(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return node.id in self.names
        if isinstance(node, ast.Attribute):
            if (
                isinstance(node.value, ast.Name)
                and node.value.id == "self"
                and node.attr in self.self_attrs
            ):
                return True
            return node.attr in self.global_set_attrs
        if isinstance(node, ast.Call):
            name = dotted_name(node.func)
            if name in ("set", "frozenset"):
                return True
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _SET_METHODS
            ):
                return self.is_setty(node.func.value)
            return False
        if isinstance(node, ast.BinOp) and isinstance(node.op, _SET_BINOPS):
            return self.is_setty(node.left) or self.is_setty(node.right)
        return False

    def learn(self, target: ast.expr, *, setty: bool) -> None:
        if isinstance(target, ast.Name):
            if setty:
                self.names.add(target.id)
            else:
                self.names.discard(target.id)
        elif (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            if setty:
                self.self_attrs.add(target.attr)
            else:
                self.self_attrs.discard(target.attr)


def collect_global_set_attrs(files: Iterable[SourceFile]) -> Set[str]:
    """Attribute names declared set-typed by any scanned class or module.

    Pulls from class-body annotations (``initially_dead: Set[NodeId]``)
    and from ``self.x = set()``-style constructor assignments, so other
    modules iterating ``obj.initially_dead`` are recognised.
    """
    attrs: Set[str] = set()
    for src in files:
        for node in ast.walk(src.tree):
            if isinstance(node, ast.AnnAssign) and _annotation_is_set(
                node.annotation
            ):
                if isinstance(node.target, ast.Name):
                    attrs.add(node.target.id)
                elif isinstance(node.target, ast.Attribute):
                    attrs.add(node.target.attr)
            elif isinstance(node, ast.Assign):
                value_setty = isinstance(
                    node.value, (ast.Set, ast.SetComp)
                ) or _call_name(node.value) in ("set", "frozenset")
                if not value_setty:
                    continue
                for target in node.targets:
                    if isinstance(target, ast.Attribute):
                        attrs.add(target.attr)
    return attrs


def _scopes(tree: ast.Module):
    """Yield (body, is_module_scope) for the module and each function."""
    yield tree.body, True
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node.body, False


def _check_rl110(src: SourceFile, global_set_attrs: Set[str]) -> List[Finding]:
    findings: List[Finding] = []
    self_attrs: Set[str] = set()
    # Pass 1: class-wide self attributes (annotations + assignments).
    for node in ast.walk(src.tree):
        if isinstance(node, ast.AnnAssign) and _annotation_is_set(
            node.annotation
        ):
            if (
                isinstance(node.target, ast.Attribute)
                and isinstance(node.target.value, ast.Name)
                and node.target.value.id == "self"
            ):
                self_attrs.add(node.target.attr)
        elif isinstance(node, ast.Assign):
            probe = _SetTracker(global_set_attrs)
            if not probe.is_setty(node.value):
                continue
            for target in node.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    self_attrs.add(target.attr)

    seen: Set[int] = set()
    for body, _is_module in _scopes(src.tree):
        tracker = _SetTracker(global_set_attrs)
        tracker.self_attrs = set(self_attrs)
        # Gather set-typed names in this scope (annotations + assignments).
        for stmt in body:
            for node in ast.walk(stmt):
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    for arg in (
                        node.args.posonlyargs
                        + node.args.args
                        + node.args.kwonlyargs
                    ):
                        if arg.annotation is not None and _annotation_is_set(
                            arg.annotation
                        ):
                            tracker.names.add(arg.arg)
                elif isinstance(node, ast.AnnAssign):
                    if _annotation_is_set(node.annotation):
                        tracker.learn(node.target, setty=True)
                elif isinstance(node, ast.Assign):
                    setty = tracker.is_setty(node.value)
                    for target in node.targets:
                        if setty:
                            tracker.learn(target, setty=True)
        # Flag unsorted iteration.
        for stmt in body:
            for node in ast.walk(stmt):
                iters: List[ast.expr] = []
                if isinstance(node, (ast.For, ast.AsyncFor)):
                    iters.append(node.iter)
                elif isinstance(
                    node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
                ):
                    iters.extend(gen.iter for gen in node.generators)
                for it in iters:
                    if tracker.is_setty(it) and id(it) not in seen:
                        seen.add(id(it))
                        findings.append(
                            Finding(
                                code="RL110",
                                path=src.rel,
                                line=it.lineno,
                                message=(
                                    "iteration over a set in "
                                    "determinism-critical code; wrap the "
                                    "iterable in sorted(...) or justify "
                                    "with a pragma"
                                ),
                            )
                        )
    return findings


def check(files: List[SourceFile]) -> List[Finding]:
    findings: List[Finding] = []
    global_set_attrs = collect_global_set_attrs(files)
    for src in files:
        for node in ast.walk(src.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".")[0]
                    if root == "random" and not src.rng_exempt:
                        findings.append(
                            Finding(
                                "RL101",
                                src.rel,
                                node.lineno,
                                "stdlib `random` imported; use "
                                "RandomStreams (repro.simulation.rng)",
                            )
                        )
                    elif root in ("uuid", "secrets") and not src.rng_exempt:
                        findings.append(
                            Finding(
                                "RL103",
                                src.rel,
                                node.lineno,
                                f"entropy module `{root}` imported; ids "
                                "must be derived from configuration",
                            )
                        )
                    elif (
                        alias.name.startswith("numpy.random")
                        and not src.rng_exempt
                    ):
                        findings.append(
                            Finding(
                                "RL104",
                                src.rel,
                                node.lineno,
                                "numpy.random imported directly; draw "
                                "from a named RandomStreams stream",
                            )
                        )
            elif isinstance(node, ast.ImportFrom):
                module = node.module or ""
                root = module.split(".")[0]
                if root == "random" and not src.rng_exempt:
                    findings.append(
                        Finding(
                            "RL101",
                            src.rel,
                            node.lineno,
                            "stdlib `random` imported; use RandomStreams "
                            "(repro.simulation.rng)",
                        )
                    )
                elif root in ("uuid", "secrets") and not src.rng_exempt:
                    findings.append(
                        Finding(
                            "RL103",
                            src.rel,
                            node.lineno,
                            f"entropy module `{root}` imported; ids must "
                            "be derived from configuration",
                        )
                    )
                elif module == "numpy.random" and not src.rng_exempt:
                    findings.append(
                        Finding(
                            "RL104",
                            src.rel,
                            node.lineno,
                            "numpy.random imported directly; draw from a "
                            "named RandomStreams stream",
                        )
                    )
                elif module == "time" and not src.clock_exempt:
                    for alias in node.names:
                        if alias.name in ("time", "time_ns"):
                            findings.append(
                                Finding(
                                    "RL102",
                                    src.rel,
                                    node.lineno,
                                    "wall-clock accessor imported from "
                                    "`time`; inject a clock instead "
                                    "(repro.utils.clock)",
                                )
                            )
            elif isinstance(node, ast.Call):
                name = dotted_name(node.func) or ""
                leaf2 = ".".join(name.split(".")[-2:])
                if leaf2 in WALL_CLOCK_SUFFIXES and not src.clock_exempt:
                    findings.append(
                        Finding(
                            "RL102",
                            src.rel,
                            node.lineno,
                            f"wall-clock read `{name}()`; accept an "
                            "injectable `now`/clock parameter instead "
                            "(repro.utils.clock)",
                        )
                    )
                elif leaf2 == "os.urandom" and not src.rng_exempt:
                    findings.append(
                        Finding(
                            "RL103",
                            src.rel,
                            node.lineno,
                            "os.urandom() is unseedable entropy",
                        )
                    )
                elif (
                    name.startswith(("np.random.", "numpy.random."))
                    and not src.rng_exempt
                ):
                    findings.append(
                        Finding(
                            "RL104",
                            src.rel,
                            node.lineno,
                            f"direct numpy RNG call `{name}(...)`; draw "
                            "from a named RandomStreams stream",
                        )
                    )
        if src.determinism_critical:
            findings.extend(_check_rl110(src, global_set_attrs))
    return findings
