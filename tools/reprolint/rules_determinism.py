"""RL1xx: determinism rules.

RL101/RL103 forbid ambient entropy (stdlib ``random``, ``uuid``,
``secrets``, ``os.urandom``); RL102 forbids wall-clock reads outside the
sanctioned clock module; RL104 forbids constructing or using numpy RNGs
outside ``repro.simulation.rng``; RL110 flags iteration over sets without
a ``sorted(...)`` wrapper in determinism-critical modules (event
scheduling and tree construction must not depend on hash order).

RL110 uses a deliberately simple, local type inference: a name is
"set-typed" when it is annotated as a set, assigned from a set literal /
``set()`` / set comprehension / set operator, or when the attribute name
is declared set-typed by any class in the scanned file set (which is how
``config.initially_dead`` is recognised far from its declaration).
The same inference extends to *bucket tables* -- dicts of sets, declared
via a ``Dict[..., Set[...]]``-style annotation or a ``defaultdict(set)``
assignment (the spatial-hash shape): ``buckets[cell]`` and
``buckets.get(cell)`` count as sets, and draining the table itself (or
its ``keys()``/``items()``/``values()``) in raw key order is flagged,
since the canonical drain order for buckets is sorted cell order.
False positives are expected to be rare and are suppressed with a
``# reprolint: disable=RL110`` pragma carrying a one-line justification.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional, Set

from .core import Finding, SourceFile, dotted_name

#: Dotted-call suffixes that read the wall clock.
WALL_CLOCK_SUFFIXES = {
    "time.time",
    "time.time_ns",
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
    "date.today",
}

#: Names that build or transform sets when called as methods.
_SET_METHODS = {
    "union",
    "intersection",
    "difference",
    "symmetric_difference",
    "copy",
}

_SET_ANNOTATION_NAMES = {
    "Set",
    "FrozenSet",
    "AbstractSet",
    "MutableSet",
    "set",
    "frozenset",
}

_SET_BINOPS = (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)

_DICT_ANNOTATION_NAMES = {
    "Dict",
    "DefaultDict",
    "Mapping",
    "MutableMapping",
    "dict",
}


def _annotation_is_set(node: ast.AST) -> bool:
    """Whether an annotation expression denotes a set type.

    Only the *outermost* constructor counts: ``Set[int]`` and
    ``Optional[Set[int]]`` are set-typed, ``Dict[int, Set[int]]`` is not.
    """
    if isinstance(node, ast.Subscript):
        base = dotted_name(node.value) or ""
        leaf = base.rsplit(".", 1)[-1]
        if leaf in _SET_ANNOTATION_NAMES:
            return True
        if leaf == "Optional":
            return _annotation_is_set(node.slice)
        return False
    name = dotted_name(node)
    if name is None:
        return False
    return name.rsplit(".", 1)[-1] in _SET_ANNOTATION_NAMES


def _annotation_is_bucket_dict(node: ast.AST) -> bool:
    """Whether an annotation denotes a dict whose *values* are sets.

    ``Dict[Cell, Set[NodeId]]`` (and the ``DefaultDict`` / ``Mapping``
    variants) is the bucket-table shape spatial hashing uses; iterating
    such a structure's value sets -- or draining the table itself in raw
    key order -- is the same hash-order hazard RL110 exists to catch.
    """
    if not isinstance(node, ast.Subscript):
        return False
    base = dotted_name(node.value) or ""
    leaf = base.rsplit(".", 1)[-1]
    if leaf == "Optional":
        return _annotation_is_bucket_dict(node.slice)
    if leaf not in _DICT_ANNOTATION_NAMES:
        return False
    sl = node.slice
    return (
        isinstance(sl, ast.Tuple)
        and len(sl.elts) == 2
        and _annotation_is_set(sl.elts[1])
    )


def _is_defaultdict_of_sets(node: ast.AST) -> bool:
    """``defaultdict(set)`` / ``collections.defaultdict(frozenset)``."""
    if not (isinstance(node, ast.Call) and node.args):
        return False
    name = dotted_name(node.func) or ""
    if name.rsplit(".", 1)[-1] != "defaultdict":
        return False
    factory = dotted_name(node.args[0])
    return factory in ("set", "frozenset")


def _call_name(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Call):
        return dotted_name(node.func)
    return None


class _SetTracker:
    """Per-scope table of set-typed names and ``self.<attr>`` attributes.

    Also tracks *bucket tables* -- dicts whose values are sets, the
    spatial-hash shape -- so that ``buckets[cell]`` / ``buckets.get(cell)``
    count as set-typed expressions and draining the table itself in raw
    key order is flagged alongside plain set iteration.
    """

    def __init__(
        self,
        global_set_attrs: Set[str],
        global_bucket_attrs: Optional[Set[str]] = None,
    ):
        self.names: Set[str] = set()
        self.self_attrs: Set[str] = set()
        self.global_set_attrs = global_set_attrs
        self.bucket_names: Set[str] = set()
        self.bucket_self_attrs: Set[str] = set()
        self.global_bucket_attrs = global_bucket_attrs or set()

    def is_setty(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return node.id in self.names
        if isinstance(node, ast.Attribute):
            if (
                isinstance(node.value, ast.Name)
                and node.value.id == "self"
                and node.attr in self.self_attrs
            ):
                return True
            return node.attr in self.global_set_attrs
        if isinstance(node, ast.Subscript):
            # buckets[cell] is one bucket: a set.
            return self.is_bucketty(node.value)
        if isinstance(node, ast.Call):
            name = dotted_name(node.func)
            if name in ("set", "frozenset"):
                return True
            if isinstance(node.func, ast.Attribute):
                if node.func.attr in _SET_METHODS:
                    return self.is_setty(node.func.value)
                if node.func.attr == "get" and self.is_bucketty(
                    node.func.value
                ):
                    return True
            return False
        if isinstance(node, ast.BinOp) and isinstance(node.op, _SET_BINOPS):
            return self.is_setty(node.left) or self.is_setty(node.right)
        return False

    def is_bucketty(self, node: ast.expr) -> bool:
        """Whether ``node`` denotes a dict-of-sets bucket table."""
        if isinstance(node, ast.Name):
            return node.id in self.bucket_names
        if isinstance(node, ast.Attribute):
            if (
                isinstance(node.value, ast.Name)
                and node.value.id == "self"
                and node.attr in self.bucket_self_attrs
            ):
                return True
            return node.attr in self.global_bucket_attrs
        return _is_defaultdict_of_sets(node)

    def learn(self, target: ast.expr, *, setty: bool) -> None:
        if isinstance(target, ast.Name):
            if setty:
                self.names.add(target.id)
            else:
                self.names.discard(target.id)
        elif (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            if setty:
                self.self_attrs.add(target.attr)
            else:
                self.self_attrs.discard(target.attr)

    def learn_bucket(self, target: ast.expr) -> None:
        if isinstance(target, ast.Name):
            self.bucket_names.add(target.id)
        elif (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            self.bucket_self_attrs.add(target.attr)


def collect_global_set_attrs(files: Iterable[SourceFile]) -> Set[str]:
    """Attribute names declared set-typed by any scanned class or module.

    Pulls from class-body annotations (``initially_dead: Set[NodeId]``)
    and from ``self.x = set()``-style constructor assignments, so other
    modules iterating ``obj.initially_dead`` are recognised.
    """
    attrs: Set[str] = set()
    for src in files:
        for node in ast.walk(src.tree):
            if isinstance(node, ast.AnnAssign) and _annotation_is_set(
                node.annotation
            ):
                if isinstance(node.target, ast.Name):
                    attrs.add(node.target.id)
                elif isinstance(node.target, ast.Attribute):
                    attrs.add(node.target.attr)
            elif isinstance(node, ast.Assign):
                value_setty = isinstance(
                    node.value, (ast.Set, ast.SetComp)
                ) or _call_name(node.value) in ("set", "frozenset")
                if not value_setty:
                    continue
                for target in node.targets:
                    if isinstance(target, ast.Attribute):
                        attrs.add(target.attr)
    return attrs


def collect_global_bucket_attrs(files: Iterable[SourceFile]) -> Set[str]:
    """Attribute names declared as dict-of-sets bucket tables anywhere.

    The bucket analogue of :func:`collect_global_set_attrs`: pulls from
    ``_buckets: Dict[Cell, Set[NodeId]]``-style annotations and from
    ``self.x = defaultdict(set)`` constructor assignments.
    """
    attrs: Set[str] = set()
    for src in files:
        for node in ast.walk(src.tree):
            if isinstance(node, ast.AnnAssign) and _annotation_is_bucket_dict(
                node.annotation
            ):
                if isinstance(node.target, ast.Name):
                    attrs.add(node.target.id)
                elif isinstance(node.target, ast.Attribute):
                    attrs.add(node.target.attr)
            elif isinstance(node, ast.Assign) and _is_defaultdict_of_sets(
                node.value
            ):
                for target in node.targets:
                    if isinstance(target, ast.Attribute):
                        attrs.add(target.attr)
    return attrs


def _scopes(tree: ast.Module):
    """Yield (body, is_module_scope) for the module and each function."""
    yield tree.body, True
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node.body, False


def _check_rl110(
    src: SourceFile,
    global_set_attrs: Set[str],
    global_bucket_attrs: Set[str],
) -> List[Finding]:
    findings: List[Finding] = []
    self_attrs: Set[str] = set()
    bucket_self_attrs: Set[str] = set()
    # Pass 1: class-wide self attributes (annotations + assignments).
    for node in ast.walk(src.tree):
        if isinstance(node, ast.AnnAssign):
            if (
                isinstance(node.target, ast.Attribute)
                and isinstance(node.target.value, ast.Name)
                and node.target.value.id == "self"
            ):
                if _annotation_is_set(node.annotation):
                    self_attrs.add(node.target.attr)
                elif _annotation_is_bucket_dict(node.annotation):
                    bucket_self_attrs.add(node.target.attr)
        elif isinstance(node, ast.Assign):
            probe = _SetTracker(global_set_attrs, global_bucket_attrs)
            value_setty = probe.is_setty(node.value)
            value_bucket = _is_defaultdict_of_sets(node.value)
            if not (value_setty or value_bucket):
                continue
            for target in node.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    if value_setty:
                        self_attrs.add(target.attr)
                    else:
                        bucket_self_attrs.add(target.attr)

    seen: Set[int] = set()
    for body, _is_module in _scopes(src.tree):
        tracker = _SetTracker(global_set_attrs, global_bucket_attrs)
        tracker.self_attrs = set(self_attrs)
        tracker.bucket_self_attrs = set(bucket_self_attrs)
        # Gather set-typed names in this scope (annotations + assignments).
        for stmt in body:
            for node in ast.walk(stmt):
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    for arg in (
                        node.args.posonlyargs
                        + node.args.args
                        + node.args.kwonlyargs
                    ):
                        if arg.annotation is None:
                            continue
                        if _annotation_is_set(arg.annotation):
                            tracker.names.add(arg.arg)
                        elif _annotation_is_bucket_dict(arg.annotation):
                            tracker.bucket_names.add(arg.arg)
                elif isinstance(node, ast.AnnAssign):
                    if _annotation_is_set(node.annotation):
                        tracker.learn(node.target, setty=True)
                    elif _annotation_is_bucket_dict(node.annotation):
                        tracker.learn_bucket(node.target)
                elif isinstance(node, ast.Assign):
                    setty = tracker.is_setty(node.value)
                    bucket = _is_defaultdict_of_sets(node.value)
                    for target in node.targets:
                        if setty:
                            tracker.learn(target, setty=True)
                        elif bucket:
                            tracker.learn_bucket(target)
        # Flag unsorted iteration.
        for stmt in body:
            for node in ast.walk(stmt):
                iters: List[ast.expr] = []
                if isinstance(node, (ast.For, ast.AsyncFor)):
                    iters.append(node.iter)
                elif isinstance(
                    node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
                ):
                    iters.extend(gen.iter for gen in node.generators)
                for it in iters:
                    if id(it) in seen:
                        continue
                    if tracker.is_setty(it):
                        seen.add(id(it))
                        findings.append(
                            Finding(
                                code="RL110",
                                path=src.rel,
                                line=it.lineno,
                                message=(
                                    "iteration over a set in "
                                    "determinism-critical code; wrap the "
                                    "iterable in sorted(...) or justify "
                                    "with a pragma"
                                ),
                            )
                        )
                    elif _is_bucket_drain(it, tracker):
                        seen.add(id(it))
                        findings.append(
                            Finding(
                                code="RL110",
                                path=src.rel,
                                line=it.lineno,
                                message=(
                                    "bucket table drained in raw key "
                                    "order in determinism-critical code; "
                                    "iterate sorted(cells) and sorted "
                                    "bucket members instead"
                                ),
                            )
                        )
    return findings


def _is_bucket_drain(it: ast.expr, tracker: _SetTracker) -> bool:
    """Iteration over a bucket table itself or its keys/items/values."""
    if tracker.is_bucketty(it):
        return True
    return (
        isinstance(it, ast.Call)
        and isinstance(it.func, ast.Attribute)
        and it.func.attr in ("keys", "items", "values")
        and tracker.is_bucketty(it.func.value)
    )


def check(files: List[SourceFile]) -> List[Finding]:
    findings: List[Finding] = []
    global_set_attrs = collect_global_set_attrs(files)
    global_bucket_attrs = collect_global_bucket_attrs(files)
    for src in files:
        for node in ast.walk(src.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".")[0]
                    if root == "random" and not src.rng_exempt:
                        findings.append(
                            Finding(
                                "RL101",
                                src.rel,
                                node.lineno,
                                "stdlib `random` imported; use "
                                "RandomStreams (repro.simulation.rng)",
                            )
                        )
                    elif root in ("uuid", "secrets") and not src.rng_exempt:
                        findings.append(
                            Finding(
                                "RL103",
                                src.rel,
                                node.lineno,
                                f"entropy module `{root}` imported; ids "
                                "must be derived from configuration",
                            )
                        )
                    elif (
                        alias.name.startswith("numpy.random")
                        and not src.rng_exempt
                    ):
                        findings.append(
                            Finding(
                                "RL104",
                                src.rel,
                                node.lineno,
                                "numpy.random imported directly; draw "
                                "from a named RandomStreams stream",
                            )
                        )
            elif isinstance(node, ast.ImportFrom):
                module = node.module or ""
                root = module.split(".")[0]
                if root == "random" and not src.rng_exempt:
                    findings.append(
                        Finding(
                            "RL101",
                            src.rel,
                            node.lineno,
                            "stdlib `random` imported; use RandomStreams "
                            "(repro.simulation.rng)",
                        )
                    )
                elif root in ("uuid", "secrets") and not src.rng_exempt:
                    findings.append(
                        Finding(
                            "RL103",
                            src.rel,
                            node.lineno,
                            f"entropy module `{root}` imported; ids must "
                            "be derived from configuration",
                        )
                    )
                elif module == "numpy.random" and not src.rng_exempt:
                    findings.append(
                        Finding(
                            "RL104",
                            src.rel,
                            node.lineno,
                            "numpy.random imported directly; draw from a "
                            "named RandomStreams stream",
                        )
                    )
                elif module == "time" and not src.clock_exempt:
                    for alias in node.names:
                        if alias.name in ("time", "time_ns"):
                            findings.append(
                                Finding(
                                    "RL102",
                                    src.rel,
                                    node.lineno,
                                    "wall-clock accessor imported from "
                                    "`time`; inject a clock instead "
                                    "(repro.utils.clock)",
                                )
                            )
            elif isinstance(node, ast.Call):
                name = dotted_name(node.func) or ""
                leaf2 = ".".join(name.split(".")[-2:])
                if leaf2 in WALL_CLOCK_SUFFIXES and not src.clock_exempt:
                    findings.append(
                        Finding(
                            "RL102",
                            src.rel,
                            node.lineno,
                            f"wall-clock read `{name}()`; accept an "
                            "injectable `now`/clock parameter instead "
                            "(repro.utils.clock)",
                        )
                    )
                elif leaf2 == "os.urandom" and not src.rng_exempt:
                    findings.append(
                        Finding(
                            "RL103",
                            src.rel,
                            node.lineno,
                            "os.urandom() is unseedable entropy",
                        )
                    )
                elif (
                    name.startswith(("np.random.", "numpy.random."))
                    and not src.rng_exempt
                ):
                    findings.append(
                        Finding(
                            "RL104",
                            src.rel,
                            node.lineno,
                            f"direct numpy RNG call `{name}(...)`; draw "
                            "from a named RandomStreams stream",
                        )
                    )
        if src.determinism_critical:
            findings.extend(
                _check_rl110(src, global_set_attrs, global_bucket_attrs)
            )
    return findings
