"""Command-line entry point: ``python -m tools.reprolint``.

Run from the repository root.  With no paths, lints ``src/repro`` and
``tools`` (the linter lints itself; its intentionally-bad self-test
corpus is excluded).  Exit status: 0 clean, 1 findings, 2 usage or
internal error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

from tools._common import REPO_ROOT, bootstrap

from . import core
from . import (
    rules_determinism,
    rules_hashcov,
    rules_layering,
    rules_obs,
    rules_streams,
)
from .core import Finding, SourceFile

#: Modules exempt from RL101/RL103/RL104: the one sanctioned RNG module.
RNG_EXEMPT = {"src/repro/simulation/rng.py"}

#: Modules exempt from RL102: the one sanctioned wall-clock accessor.
CLOCK_EXEMPT = {"src/repro/utils/clock.py"}

#: Where RL110 (unsorted set iteration) applies: event scheduling, tree
#: construction, scenario models, and the experiment runner's epoch loop.
DETERMINISM_CRITICAL_PREFIXES = (
    "src/repro/simulation/",
    "src/repro/network/",
)
DETERMINISM_CRITICAL_FILES = {
    "src/repro/scenarios/models.py",
    "src/repro/experiments/runner.py",
}

#: Path fragments never scanned.
EXCLUDED_PARTS = {"__pycache__"}
CORPUS_DIR = Path(__file__).resolve().parent / "corpus"

DEFAULT_TARGETS = ("src/repro", "tools")


def _iter_python_files(paths: Sequence[Path]) -> List[Path]:
    out: List[Path] = []
    for path in paths:
        if path.is_file() and path.suffix == ".py":
            out.append(path)
        elif path.is_dir():
            for sub in sorted(path.rglob("*.py")):
                if EXCLUDED_PARTS.intersection(sub.parts):
                    continue
                try:
                    sub.resolve().relative_to(CORPUS_DIR)
                    continue  # the intentionally-bad corpus
                except ValueError:
                    pass
                out.append(sub)
    return out


def _apply_policy(src: SourceFile) -> SourceFile:
    src.rng_exempt = src.rel in RNG_EXEMPT
    src.clock_exempt = src.rel in CLOCK_EXEMPT
    src.determinism_critical = src.rel.startswith(
        DETERMINISM_CRITICAL_PREFIXES
    ) or src.rel in DETERMINISM_CRITICAL_FILES
    # Corpus snippets passed explicitly are linted under the strictest
    # policy so every known-bad fixture fails from the CLI too.
    try:
        src.path.resolve().relative_to(CORPUS_DIR)
        src.determinism_critical = True
    except ValueError:
        pass
    return src


def lint_paths(
    paths: Sequence[Path],
    repo_root: Path,
    *,
    dynamic: bool = True,
) -> Tuple[List[Finding], List[SourceFile], int]:
    """Lint the given paths; returns (findings, files, n_suppressed)."""
    findings: List[Finding] = []
    files: List[SourceFile] = []
    for path in _iter_python_files(paths):
        src, parse_finding = core.load_source_file(path, repo_root)
        if parse_finding is not None:
            findings.append(parse_finding)
            continue
        assert src is not None
        files.append(_apply_policy(src))

    repo_mode = any(f.rel.startswith("src/repro/") for f in files)
    findings.extend(rules_determinism.check(files))
    findings.extend(rules_hashcov.check(files, dynamic=dynamic and repo_mode))
    findings.extend(rules_layering.check(files))
    findings.extend(
        rules_streams.check(files, repo_root, repo_mode=repo_mode)
    )
    findings.extend(rules_obs.check(files, repo_root, repo_mode=repo_mode))
    findings, suppressed = core.apply_pragmas(findings, files)
    return sorted(findings, key=lambda f: f.sort_key), files, suppressed


def _filter_selection(
    findings: Sequence[Finding],
    select: Optional[Sequence[str]],
    ignore: Sequence[str],
) -> List[Finding]:
    out = []
    for finding in findings:
        if select and not core.code_matches(finding.code, select):
            continue
        if ignore and core.code_matches(finding.code, ignore):
            continue
        out.append(finding)
    return out


def _parse_codes(raw: Optional[Sequence[str]]) -> List[str]:
    codes: List[str] = []
    for chunk in raw or ():
        codes.extend(c.strip() for c in chunk.split(",") if c.strip())
    return codes


def _render(
    findings: Sequence[Finding],
    suppressed: int,
    n_files: int,
    fmt: str,
) -> str:
    if fmt == "json":
        return json.dumps(
            {
                "version": 1,
                "count": len(findings),
                "suppressed": suppressed,
                "files": n_files,
                "findings": [f.to_json() for f in findings],
            },
            indent=2,
            sort_keys=True,
        )
    lines = [f.render() for f in findings]
    lines.append(
        f"reprolint: {len(findings)} finding(s), {suppressed} suppressed "
        f"by pragmas, {n_files} file(s) checked"
    )
    return "\n".join(lines)


def _expected_codes(source: str) -> Optional[List[str]]:
    for line in source.splitlines():
        stripped = line.strip()
        if stripped.startswith("# reprolint-corpus:"):
            _, _, spec = stripped.partition("expect=")
            return [c.strip() for c in spec.split(",") if c.strip()]
    return None


def run_self_test(stdout=sys.stdout) -> int:
    """Lint every corpus snippet and compare against its expectations.

    Each ``corpus/*.py`` file declares ``# reprolint-corpus:
    expect=RL101,...`` (empty for known-good snippets); the set of rule
    codes found must match exactly.
    """
    failures = 0
    snippets = sorted(CORPUS_DIR.glob("*.py"))
    if not snippets:
        print("self-test: no corpus snippets found", file=sys.stderr)
        return 2
    for path in snippets:
        expected = _expected_codes(path.read_text(encoding="utf-8"))
        if expected is None:
            print(f"FAIL {path.name}: missing `# reprolint-corpus: expect=`")
            failures += 1
            continue
        src, parse_finding = core.load_source_file(path, REPO_ROOT)
        if parse_finding is not None:
            found = {parse_finding.code}
        else:
            assert src is not None
            src.determinism_critical = True
            findings = []
            findings.extend(rules_determinism.check([src]))
            findings.extend(rules_hashcov.check([src], dynamic=False))
            findings.extend(
                rules_streams.check([src], REPO_ROOT, repo_mode=False)
            )
            findings.extend(
                rules_obs.check([src], REPO_ROOT, repo_mode=False)
            )
            findings, _ = core.apply_pragmas(findings, [src])
            found = {f.code for f in findings}
        if found == set(expected):
            label = ",".join(sorted(found)) or "clean"
            print(f"ok   {path.name}: {label}", file=stdout)
        else:
            print(
                f"FAIL {path.name}: expected {sorted(expected)}, "
                f"found {sorted(found)}",
                file=stdout,
            )
            failures += 1
    verdict = "passed" if not failures else f"{failures} failure(s)"
    print(f"self-test {verdict} over {len(snippets)} snippets", file=stdout)
    return 0 if not failures else 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    bootstrap()
    parser = argparse.ArgumentParser(
        prog="python -m tools.reprolint",
        description=(
            "AST contract linter: determinism (RL1xx), config hash "
            "coverage (RL2xx), import layering (RL3xx), RNG stream "
            "discipline (RL4xx), observability catalogue discipline "
            "(RL5xx).  See docs/linting.md."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files/directories to lint (default: src/repro and tools)",
    )
    parser.add_argument(
        "--select",
        action="append",
        metavar="CODES",
        help="only report these codes/prefixes (comma-separated, e.g. RL1,RL302)",
    )
    parser.add_argument(
        "--ignore",
        action="append",
        metavar="CODES",
        help="drop these codes/prefixes (comma-separated)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--no-dynamic",
        action="store_true",
        help="skip the RL210 dynamic hash-coverage check (no imports)",
    )
    parser.add_argument(
        "--self-test",
        action="store_true",
        help="lint the known-bad corpus and verify every rule fires",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for code in sorted(core.RULES):
            summary, rationale = core.RULES[code]
            print(f"{code}  {summary}\n       ({rationale})")
        return 0
    if args.self_test:
        return run_self_test()

    targets = [
        Path(p) if Path(p).is_absolute() else REPO_ROOT / p
        for p in (args.paths or DEFAULT_TARGETS)
    ]
    for target in targets:
        if not target.exists():
            print(f"reprolint: no such path: {target}", file=sys.stderr)
            return 2

    findings, files, suppressed = lint_paths(
        targets, REPO_ROOT, dynamic=not args.no_dynamic
    )
    findings = _filter_selection(
        findings, _parse_codes(args.select), _parse_codes(args.ignore)
    )
    print(_render(findings, suppressed, len(files), args.format))
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
