"""reprolint: AST-based contract linter for the reproduction codebase.

The simulation's reproducibility guarantees (bit-identical trials at any
worker count, config-hash cache keys, fingerprint golden tests) rest on
invariants that ordinary tests only catch *after* a violation ships.
reprolint proves them over the program structure instead:

* **RL1xx determinism** -- no ambient randomness or wall-clock reads in
  simulation code; order-sensitive iteration over sets must be sorted.
* **RL2xx hash coverage** -- every config-dataclass field is reachable
  from ``config_hash``/``_canonical`` or explicitly exempted.
* **RL3xx import layering** -- the declared layer DAG holds; no eager
  import cycles; ``scenarios.{spec,models}`` stay experiment-free.
* **RL4xx RNG-stream discipline** -- every named ``RandomStreams`` stream
  is a registered literal owned by exactly one module.

Run from the repository root::

    python -m tools.reprolint            # lint src/repro and tools/
    python -m tools.reprolint --self-test

See ``docs/linting.md`` for the rule catalogue and the exemption policy.
"""

from .core import Finding, RULES

__all__ = ["Finding", "RULES"]

__version__ = "1.0"
