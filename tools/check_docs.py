#!/usr/bin/env python
"""Smoke-check the commands embedded in the documentation.

Scans fenced code blocks in ``docs/*.md`` and ``README.md`` for
``python -m <module>`` invocations and verifies that

* every referenced module actually resolves on the import path, and
* every module known to expose an argparse CLI answers ``--help`` with
  exit code 0 (so documented flags can at least parse).

This is what keeps the docs from drifting: renaming or removing a CLI
without updating the docs fails the CI docs job.  Run from the repository
root:

    PYTHONPATH=src python tools/check_docs.py
"""

from __future__ import annotations

import importlib.util
import os
import re
import subprocess
import sys
from pathlib import Path

if __package__ in (None, ""):
    # Launched as a script (`python tools/check_docs.py`): make the
    # `tools` package importable before touching tools._common.
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from tools._common import REPO_ROOT, SRC_ROOT, bootstrap

bootstrap()

#: Files scanned for fenced code blocks (repo-relative, resolved against
#: REPO_ROOT so the script works from any working directory).
DOC_FILES = sorted(
    p.relative_to(REPO_ROOT) for p in (REPO_ROOT / "docs").glob("*.md")
) + [Path("README.md")]

#: Modules with an argparse entry point: ``--help`` must exit 0.
ARGPARSE_CLIS = {
    "repro.experiments.smoke",
    "repro.experiments.replicate",
    "repro.experiments.cache",
    "repro.experiments.campaign",
    "repro.experiments.grid",
    "repro.scenarios.run",
    "repro.obs.report",
    "benchmarks.bench_engine",
    "benchmarks.bench_scenarios",
    "benchmarks.bench_scale",
    "tools.reprolint",
}

FENCE_RE = re.compile(r"^```")
PYTHON_M_RE = re.compile(r"python\s+-m\s+([A-Za-z_][\w.]*)")


def extract_modules(path: Path) -> set:
    """All ``python -m`` targets inside the file's fenced code blocks."""
    modules = set()
    in_fence = False
    for line in path.read_text().splitlines():
        if FENCE_RE.match(line.strip()):
            in_fence = not in_fence
            continue
        if in_fence:
            for match in PYTHON_M_RE.finditer(line):
                modules.add(match.group(1))
    return modules


def main() -> int:
    failures = []
    all_modules = {}
    for doc in DOC_FILES:
        path = REPO_ROOT / doc
        if not path.is_file():
            failures.append(f"{doc}: documented file is missing")
            continue
        for module in extract_modules(path):
            all_modules.setdefault(module, []).append(str(doc))

    if not all_modules:
        failures.append("no `python -m` commands found in any doc -- "
                        "is the fence scanning broken?")

    for module, sources in sorted(all_modules.items()):
        try:
            spec = importlib.util.find_spec(module)
        except ModuleNotFoundError:
            spec = None
        if spec is None:
            failures.append(
                f"module {module!r} (referenced by {', '.join(sources)}) "
                "does not resolve"
            )
            continue
        print(f"ok: {module} resolves ({', '.join(sources)})")

    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(SRC_ROOT), str(REPO_ROOT)]
        + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    for module in sorted(ARGPARSE_CLIS & set(all_modules)):
        proc = subprocess.run(
            [sys.executable, "-m", module, "--help"],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
            env=env,
        )
        if proc.returncode != 0:
            failures.append(
                f"`python -m {module} --help` exited {proc.returncode}:\n"
                f"{proc.stderr.strip()}"
            )
        else:
            print(f"ok: {module} --help")

    missing_clis = ARGPARSE_CLIS - set(all_modules)
    if missing_clis:
        failures.append(
            "documented CLIs no longer mentioned anywhere in the docs: "
            + ", ".join(sorted(missing_clis))
        )

    if failures:
        print("\nDOCS CHECK FAILED", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print(f"\ndocs check passed: {len(all_modules)} modules verified")
    return 0


if __name__ == "__main__":
    sys.exit(main())
