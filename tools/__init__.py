"""Repository maintenance tooling (not shipped with the library).

``tools.check_docs`` smoke-checks the commands embedded in the docs;
``tools.reprolint`` is the AST contract linter enforcing the determinism,
hash-coverage, import-layering, and RNG-stream invariants (see
``docs/linting.md``).  Both are run from the repository root::

    python -m tools.reprolint
    python tools/check_docs.py
"""
